//! The framed-TCP listener in front of a [`LocalizationServer`].
//!
//! One accept thread, and per connection a **reader** thread (decode
//! frames, feed the server's bounded queue via the fail-fast callback
//! submit) and a **writer** thread (encode and send response frames in the
//! order answers become available — completion order, so a shed response
//! for a late request overtakes the answer to an earlier queued one).
//! Backpressure is wire-visible: a full queue sheds the request with
//! [`WireStatus::Shed`] instead of stalling the connection or panicking.
//!
//! Shutdown drains gracefully: stop accepting, half-close the read side of
//! every connection (no new requests), answer everything already accepted,
//! flush and half-close the write sides, join every thread.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use stone_obs::metrics::{write_sample, write_type};
use stone_serve::{
    LocalizationServer, ModelRegistry, ServerConfig, ServerHandle, StatsSnapshot, VenueHandle,
};

use crate::codec::{
    decode_admin_request, decode_request, encode_admin_chunks, encode_response, AdminQuery,
    ScanResponse, WirePosition, WireStatus, KIND_STATS_REQUEST, KIND_TRACE_REQUEST, MAX_FRAME_LEN,
};

/// Live wire-level counters of one [`NetServer`], shared across its
/// connection threads (relaxed atomics — same recording discipline as
/// `stone-serve`'s `ServerStats`).
#[derive(Debug, Default)]
struct NetStats {
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    requests_decoded: AtomicU64,
    responses_written: AtomicU64,
    shed: AtomicU64,
    malformed_frames: AtomicU64,
    admin_requests: AtomicU64,
}

/// A point-in-time copy of a [`NetServer`]'s wire-level counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections fully torn down (writer flushed and exited).
    pub connections_closed: u64,
    /// Request frames successfully decoded.
    pub requests_decoded: u64,
    /// Response frames written to sockets (including error responses).
    pub responses_written: u64,
    /// Requests shed at the door with [`WireStatus::Shed`] (the wire view
    /// of the server's `rejected` counter).
    pub shed: u64,
    /// Frames that failed to parse; each one closed its connection after a
    /// [`WireStatus::Malformed`] goodbye.
    pub malformed_frames: u64,
    /// Admin telemetry queries ([`AdminQuery`]) answered.
    pub admin_requests: u64,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            requests_decoded: self.requests_decoded.load(Ordering::Relaxed),
            responses_written: self.responses_written.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            admin_requests: self.admin_requests.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the accept loop and the connection threads.
struct NetShared {
    accepting: AtomicBool,
    stats: NetStats,
    handle: ServerHandle,
    /// The inner server's registry — the admin stats surface reports each
    /// venue's published model version from here.
    registry: Arc<ModelRegistry>,
    conns: Mutex<Vec<Conn>>,
}

/// What a reader queues for its connection's writer thread.
enum Outbound {
    /// A scan answer, tagged with the protocol version of the request it
    /// answers (the writer echoes it so a v1 client only sees v1 frames).
    Response(u8, ScanResponse),
    /// An admin reply body; the writer chunks it
    /// ([`encode_admin_chunks`]) so chunks of one reply are contiguous on
    /// the wire however many queries race.
    Admin { request_id: u64, text: String },
}

/// One live connection's threads plus a stream clone for half-closing.
/// The handles are `Option` only so shutdown can join the readers first
/// (drain order) and the writers after the inner server flushed.
struct Conn {
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl Conn {
    fn is_finished(&self) -> bool {
        self.reader.as_ref().is_none_or(JoinHandle::is_finished)
            && self.writer.as_ref().is_none_or(JoinHandle::is_finished)
    }
}

/// A framed-TCP localization server: a [`LocalizationServer`] with a wire.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use stone::StoneBuilder;
/// use stone_dataset::{office_suite, SuiteConfig};
/// use stone_net::{NetClient, NetServer};
/// use stone_serve::{ModelRegistry, ServerConfig};
///
/// let suite = office_suite(&SuiteConfig::tiny(1));
/// let registry = Arc::new(ModelRegistry::new());
/// registry.publish("office", StoneBuilder::quick().fit(&suite.train, 1));
///
/// let mut server = NetServer::start(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
/// let mut client = NetClient::connect(server.local_addr()).unwrap();
/// let pos = client.locate("office", &suite.train.records()[0].rssi).unwrap();
/// println!("located at ({}, {}) by model v{}", pos.x, pos.y, pos.model_version);
/// server.shutdown();
/// ```
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<NetShared>,
    accept: Option<JoinHandle<()>>,
    server: Option<LocalizationServer>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `registry` with a fresh inner [`LocalizationServer`] built from
    /// `cfg`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn start(
        registry: Arc<ModelRegistry>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::start_with(LocalizationServer::start(registry, cfg), addr)
    }

    /// Puts a wire in front of an already-running [`LocalizationServer`] —
    /// the composition point that lets tests start the inner server
    /// *paused* ([`LocalizationServer::start_paused`]) to pin the
    /// backpressure contract deterministically.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn start_with(
        server: LocalizationServer,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Self> {
        // `STONE_TRACE=1` arms stage-span tracing for the whole process at
        // the moment the wire goes up — the ops-facing switch mirroring
        // `STONE_PROF` for kernels (in-process callers use
        // `stone_obs::set_tracing` directly).
        if std::env::var("STONE_TRACE").is_ok_and(|v| matches!(v.as_str(), "1" | "true")) {
            stone_obs::set_tracing(true);
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            accepting: AtomicBool::new(true),
            stats: NetStats::default(),
            handle: server.handle(),
            registry: Arc::clone(server.registry()),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("stone-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        Ok(Self { addr: local, shared, accept: Some(accept), server: Some(server) })
    }

    /// The bound address (resolves the ephemeral port of `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Unparks the inner server's executors (see
    /// [`LocalizationServer::resume`]). A no-op unless it was started
    /// paused.
    pub fn resume(&self) {
        if let Some(server) = &self.server {
            server.resume();
        }
    }

    /// A point-in-time copy of the wire-level counters.
    #[must_use]
    pub fn stats(&self) -> NetStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// A point-in-time copy of the inner [`LocalizationServer`]'s counters
    /// (queue depth, batch histogram, latency buckets).
    ///
    /// # Panics
    ///
    /// Panics when called after `shutdown` (the inner server is gone).
    #[must_use]
    pub fn serve_stats(&self) -> StatsSnapshot {
        self.server.as_ref().expect("server running").stats()
    }

    /// Gracefully drains and tears the whole front-end down:
    ///
    /// 1. stop accepting (new connects are refused once the listener
    ///    closes);
    /// 2. half-close the **read** side of every connection — no new
    ///    requests, but nothing already accepted is lost;
    /// 3. shut the inner server down, which answers every queued request
    ///    (their callbacks enqueue response frames);
    /// 4. writers flush those frames, half-close the **write** sides and
    ///    exit; every thread is joined before this returns.
    ///
    /// Returns the final wire-level counters — the only way to observe
    /// `connections_closed` at its settled value, since every writer has
    /// exited by the time this returns.
    ///
    /// Idempotent: a second call is a no-op that returns the same settled
    /// ledger (nothing moves the counters once every thread has exited).
    pub fn shutdown(&mut self) -> NetStatsSnapshot {
        self.shutdown_inner();
        self.shared.stats.snapshot()
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.shared.accepting.store(false, Ordering::SeqCst);
        // The accept loop is parked in accept(); a loopback connect wakes
        // it so it can observe the flag and drop the listener.
        drop(TcpStream::connect(self.addr));
        let _ = accept.join();

        let mut conns =
            std::mem::take(&mut *self.shared.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for conn in &conns {
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        for conn in &mut conns {
            // Readers exit on the EOF the half-close produced, after
            // submitting whatever complete frames they had already read;
            // they only block in read(), never in submit (try_submit_with
            // is non-blocking), so this join cannot deadlock.
            if let Some(reader) = conn.reader.take() {
                let _ = reader.join();
            }
        }
        // Drains the bounded queue: every accepted request is *answered*
        // (callbacks fire, enqueueing response frames on the writers).
        if let Some(mut server) = self.server.take() {
            server.shutdown();
        }
        // With all callback senders consumed and the readers gone, each
        // writer's channel disconnects once it has flushed everything.
        for mut conn in conns {
            if let Some(writer) = conn.writer.take() {
                let _ = writer.join();
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetServer({})", self.addr)
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<NetShared>) {
    for stream in listener.incoming() {
        if !shared.accepting.load(Ordering::SeqCst) {
            // The wake-up connect (or a straggler) lands here; dropping
            // the listener refuses everything after it.
            return;
        }
        let Ok(stream) = stream else { continue };
        shared.stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
        let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        // Reap connections whose threads already finished so a long-lived
        // server's list tracks live connections, not history.
        conns.retain(|c| !c.is_finished());
        conns.push(spawn_connection(stream, shared));
    }
}

/// Spawns the reader/writer pair for one accepted connection.
fn spawn_connection(stream: TcpStream, shared: &Arc<NetShared>) -> Conn {
    // Response frames are small and latency-sensitive; never Nagle them.
    let _ = stream.set_nodelay(true);
    let (tx, rx) = mpsc::channel::<Outbound>();
    let reader = {
        let stream = stream.try_clone().expect("clone stream");
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("stone-net-read".into())
            .spawn(move || reader_loop(stream, &shared, &tx))
            .expect("spawn reader thread")
    };
    let writer = {
        let stream = stream.try_clone().expect("clone stream");
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("stone-net-write".into())
            .spawn(move || writer_loop(stream, &shared, &rx))
            .expect("spawn writer thread")
    };
    Conn { stream, reader: Some(reader), writer: Some(writer) }
}

/// Most venues one connection memoizes a [`VenueHandle`] for. Real
/// connections talk to one venue (a phone is in one building); the cap
/// just keeps a hostile client cycling venue names from growing the map.
const VENUE_CACHE_CAP: usize = 64;

/// Reads frames off one connection, routes them by kind — scan requests
/// feed the server's bounded queue, admin queries are answered from the
/// telemetry surfaces — and exits on EOF, read error, or an unparseable
/// frame (after queueing a [`WireStatus::Malformed`] goodbye — framing
/// errors are not recoverable in-stream).
fn reader_loop(stream: TcpStream, shared: &Arc<NetShared>, tx: &Sender<Outbound>) {
    let mut reader = BufReader::new(stream);
    // Per-connection venue-handle cache: the first request for a venue
    // pays the stats-map read lock, every later one records against the
    // cached block lock-free (the satellite-1 hot path, wire side).
    let mut venues: HashMap<String, VenueHandle> = HashMap::new();
    loop {
        let mut len_buf = [0u8; 4];
        if reader.read_exact(&mut len_buf).is_err() {
            return; // peer closed (or drain half-closed our read side)
        }
        let declared = u32::from_le_bytes(len_buf) as usize;
        if declared > MAX_FRAME_LEN {
            // Reject before allocating: an attacker-declared length never
            // reserves memory. (Lengths too short for a header fall through
            // to decode_request, which rejects them as Truncated.)
            goodbye(shared, tx);
            return;
        }
        let mut payload = vec![0u8; declared];
        if reader.read_exact(&mut payload).is_err() {
            return; // truncated mid-frame: peer gone
        }
        if matches!(
            crate::codec::payload_kind(&payload),
            Some(KIND_STATS_REQUEST | KIND_TRACE_REQUEST)
        ) {
            let Ok((query, request_id)) = decode_admin_request(&payload) else {
                goodbye(shared, tx);
                return;
            };
            shared.stats.admin_requests.fetch_add(1, Ordering::Relaxed);
            let text = match query {
                AdminQuery::Stats => stats_text(shared),
                AdminQuery::Trace => trace_text(),
            };
            drop(tx.send(Outbound::Admin { request_id, text }));
            continue;
        }
        let (req, version) = match decode_request(&payload) {
            Ok(decoded) => decoded,
            Err(_) => {
                goodbye(shared, tx);
                return;
            }
        };
        shared.stats.requests_decoded.fetch_add(1, Ordering::Relaxed);
        let reply_tx = tx.clone();
        let reply_shared = Arc::clone(shared);
        let request_id = req.request_id;
        // The deadline budget counts from decode time (the server cannot
        // know the client's send instant); 0 on the wire means none.
        let deadline = (req.deadline_us > 0)
            .then(|| std::time::Duration::from_micros(u64::from(req.deadline_us)));
        let reply = move |result: Result<stone_serve::LocateResponse, stone_serve::ServeError>| {
            let result = match result {
                Ok(resp) => Ok(WirePosition {
                    x: resp.position.x,
                    y: resp.position.y,
                    model_version: resp.model_version,
                }),
                Err(e) => {
                    let status = WireStatus::from(&e);
                    if status == WireStatus::Shed {
                        reply_shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(status)
                }
            };
            // The writer being gone (peer vanished) is not an error.
            drop(reply_tx.send(Outbound::Response(version, ScanResponse { request_id, result })));
        };
        // A v3 frame's trace id rides through to the executor's stage
        // spans; 0 (or an older client) lets the server mint its own.
        let submitted = match venues.get(&req.venue) {
            Some(vh) => {
                vh.try_submit_with_deadline_traced(&req.rssi, deadline, req.trace_id, reply)
            }
            None if venues.len() < VENUE_CACHE_CAP => {
                let vh = shared.handle.venue_handle(&req.venue);
                let r =
                    vh.try_submit_with_deadline_traced(&req.rssi, deadline, req.trace_id, reply);
                venues.insert(req.venue.clone(), vh);
                r
            }
            None => shared.handle.try_submit_with_deadline_traced(
                &req.venue,
                &req.rssi,
                deadline,
                req.trace_id,
                reply,
            ),
        };
        // QueueFull was already answered through the callback (that is the
        // wire-visible shed); only a draining server ends the read loop.
        if matches!(submitted, Err(stone_serve::ServeError::ShuttingDown)) {
            return;
        }
    }
}

/// Renders the full stats surface as one exposition document: the inner
/// server's counters and histograms, breaker states, published model
/// versions, the wire front-end's own counters, the global obs registry
/// (kernel profiling, pool dispatch) and the span ledger.
fn stats_text(shared: &NetShared) -> String {
    let mut out = shared.handle.stats().exposition();
    let breakers = shared.handle.breaker_states();
    if !breakers.is_empty() {
        write_type(&mut out, "stone_serve_breaker_state", "gauge");
        for (venue, state) in &breakers {
            write_sample(
                &mut out,
                "stone_serve_breaker_state",
                &[("venue", venue)],
                f64::from(state.as_gauge()),
            );
        }
    }
    let venues = shared.registry.venues();
    if !venues.is_empty() {
        write_type(&mut out, "stone_model_version", "gauge");
        for venue in &venues {
            if let Some(entry) = shared.registry.snapshot(venue) {
                let version = entry.version() as f64;
                write_sample(&mut out, "stone_model_version", &[("venue", venue)], version);
            }
        }
    }
    let net = shared.stats.snapshot();
    let counters = [
        ("stone_net_connections_accepted_total", net.connections_accepted),
        ("stone_net_connections_closed_total", net.connections_closed),
        ("stone_net_requests_decoded_total", net.requests_decoded),
        ("stone_net_responses_written_total", net.responses_written),
        ("stone_net_shed_total", net.shed),
        ("stone_net_malformed_frames_total", net.malformed_frames),
        ("stone_net_admin_requests_total", net.admin_requests),
    ];
    for (name, value) in counters {
        write_type(&mut out, name, "counter");
        write_sample(&mut out, name, &[], value as f64);
    }
    // The global registry (kernel profiling under STONE_PROF, pool
    // dispatch) plus the span ledger — CI's opened == closed invariant,
    // checked over the wire.
    out.push_str(&stone_obs::dump());
    let (opened, closed) = stone_obs::span_ledger();
    write_type(&mut out, "stone_trace_spans_opened_total", "counter");
    write_sample(&mut out, "stone_trace_spans_opened_total", &[], opened as f64);
    write_type(&mut out, "stone_trace_spans_closed_total", "counter");
    write_sample(&mut out, "stone_trace_spans_closed_total", &[], closed as f64);
    out
}

/// Most span records one trace query returns (newest kept). Bounds the
/// reply at roughly a quarter megabyte of text however full the ring is;
/// the header says when the window clipped.
const TRACE_DUMP_CAP: usize = 4096;

/// Renders the span ring as text: a `#`-prefixed header with the ledger
/// and window, then one `trace_id=… stage=… start_us=… dur_us=…` line per
/// record, oldest first.
fn trace_text() -> String {
    let spans = stone_obs::span_snapshot();
    let (opened, closed) = stone_obs::span_ledger();
    let skipped = spans.len().saturating_sub(TRACE_DUMP_CAP);
    let mut out = format!(
        "# span ring: {} records ({} older clipped), ledger opened={opened} closed={closed}, tracing={}\n",
        spans.len().min(TRACE_DUMP_CAP),
        skipped,
        if stone_obs::tracing_enabled() { "on" } else { "off" },
    );
    for s in &spans[skipped..] {
        out.push_str(&format!(
            "trace_id={} stage={} start_us={} dur_us={}\n",
            s.trace_id, s.stage, s.start_us, s.dur_us
        ));
    }
    out
}

/// Queues the request-id-0 Malformed goodbye that precedes closing a
/// desynchronized connection. Encoded as the oldest supported protocol
/// version: a frame that failed to decode carries no trustworthy version
/// byte, and every client version can parse a v1 response.
fn goodbye(shared: &NetShared, tx: &Sender<Outbound>) {
    shared.stats.malformed_frames.fetch_add(1, Ordering::Relaxed);
    drop(tx.send(Outbound::Response(
        crate::codec::MIN_PROTOCOL_VERSION,
        ScanResponse { request_id: 0, result: Err(WireStatus::Malformed) },
    )));
}

/// Writes response frames in the order answers arrive (completion order),
/// flushing whenever the channel runs momentarily dry so latency never
/// waits on the buffer filling up.
fn writer_loop(stream: TcpStream, shared: &Arc<NetShared>, rx: &Receiver<Outbound>) {
    let half_close = stream.try_clone();
    let mut writer = BufWriter::new(stream);
    'outer: loop {
        let outbound = match rx.try_recv() {
            Ok(resp) => resp,
            Err(TryRecvError::Empty) => {
                if writer.flush().is_err() {
                    break;
                }
                match rx.recv() {
                    Ok(resp) => resp,
                    Err(_) => break, // reader gone and every callback fired
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        match outbound {
            Outbound::Response(version, resp) => {
                if writer.write_all(&encode_response(&resp, version)).is_err() {
                    break; // peer gone; pending callbacks tolerate the dead channel
                }
                shared.stats.responses_written.fetch_add(1, Ordering::Relaxed);
            }
            // Chunks of one admin reply go out back to back — this thread
            // is the only writer, so a client can concatenate until `last`
            // without reordering logic.
            Outbound::Admin { request_id, text } => {
                for chunk in encode_admin_chunks(request_id, &text) {
                    if writer.write_all(&chunk).is_err() {
                        break 'outer;
                    }
                    shared.stats.responses_written.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    let _ = writer.flush();
    if let Ok(stream) = half_close {
        let _ = stream.shutdown(Shutdown::Write);
    }
    shared.stats.connections_closed.fetch_add(1, Ordering::Relaxed);
}
