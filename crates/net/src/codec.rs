//! The wire codec: length-prefixed binary frames for scan requests and
//! position responses.
//!
//! Every frame is a `u32` little-endian payload length followed by the
//! payload; every payload starts with a protocol version byte and a message
//! kind byte, then a client-chosen `u64` request id that the response
//! echoes (responses travel back in **completion order**, so the id is what
//! lets a pipelining client match them up). Hard caps bound every
//! allocation *before* it happens: a declared payload length above
//! [`MAX_FRAME_LEN`], a venue name above [`MAX_VENUE_LEN`] or an AP count
//! above [`MAX_AP_COUNT`] is rejected without reserving a byte, and counts
//! are additionally validated against the bytes actually present — hostile
//! input produces a [`WireError`], never a panic and never an oversized
//! allocation. The full frame layout table lives in `DESIGN.md`.

use std::time::Duration;

/// Version byte this codec emits. Decoders accept the whole
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] range, so an upgraded
/// server keeps talking to old clients: a v1 request simply carries no
/// deadline (it decodes with `deadline_us == 0`), and the server echoes the
/// **request's** version in its response so a v1 client never sees bytes it
/// cannot parse. v2 added the `u32` deadline budget to requests and the
/// [`WireStatus::DeadlineExceeded`] / [`WireStatus::Unavailable`] codes;
/// when a response to a *v1* request would carry a status v1 cannot name,
/// [`encode_response`] downgrades it to [`WireStatus::Internal`]
/// (`DeadlineExceeded` cannot occur — a v1 request carries no deadline).
/// v3 added the `u64` [`ScanRequest::trace_id`] (v1/v2 requests decode
/// with `trace_id == 0`, untraced) and the admin frame kinds
/// ([`encode_admin_request`] / [`encode_admin_chunks`]) that serve the
/// wire-queryable telemetry.
pub const PROTOCOL_VERSION: u8 = 3;

/// Oldest protocol version the decoders still accept.
pub const MIN_PROTOCOL_VERSION: u8 = 1;

/// Hard cap on the declared payload length, in bytes. Anything larger is
/// rejected before allocation (a generous bound: the largest legal request
/// is `12 + 1 + 255 + 2 + 4·MAX_AP_COUNT` ≈ 8.5 KiB).
pub const MAX_FRAME_LEN: usize = 16 * 1024;

/// Hard cap on the RSSI vector length of one request.
pub const MAX_AP_COUNT: usize = 2048;

/// Hard cap on the venue-name byte length (it is length-prefixed by a
/// single byte, so this is also the representable maximum).
pub const MAX_VENUE_LEN: usize = 255;

/// Payload bytes shared by every message kind: version, kind, request id.
const HEADER_LEN: usize = 1 + 1 + 8;

/// Message kind byte of a scan request.
pub const KIND_REQUEST: u8 = 1;
/// Message kind byte of a position response.
pub const KIND_RESPONSE: u8 = 2;
/// Message kind byte of an admin **stats** query (header-only payload).
pub const KIND_STATS_REQUEST: u8 = 3;
/// Message kind byte of an admin **trace-snapshot** query (header-only
/// payload).
pub const KIND_TRACE_REQUEST: u8 = 4;
/// Message kind byte of one admin text chunk answering either query.
pub const KIND_ADMIN_CHUNK: u8 = 5;

/// Most text bytes one admin chunk can carry: whatever fits in a frame
/// after the header and the last-chunk flag. Longer admin bodies are split
/// across several chunks ([`encode_admin_chunks`]) rather than raising
/// [`MAX_FRAME_LEN`] for everyone.
pub const MAX_ADMIN_TEXT_LEN: usize = MAX_FRAME_LEN - HEADER_LEN - 1;

/// One localization query as it travels over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRequest {
    /// Client-chosen id echoed verbatim in the response.
    pub request_id: u64,
    /// Venue (building / floorplan) the scan belongs to.
    pub venue: String,
    /// The RSSI vector, one entry per AP of the venue's universe.
    pub rssi: Vec<f32>,
    /// Deadline budget in microseconds, counted from the moment the server
    /// decodes the request; **0 means no deadline** (and is what a v1 frame,
    /// which has no field for it, decodes to). A request still queued when
    /// its budget runs out is answered [`WireStatus::DeadlineExceeded`]
    /// without ever reaching the model. The `u32` range tops out around 71
    /// minutes — far past any sane queueing deadline.
    pub deadline_us: u32,
    /// Tracing correlation ID (protocol v3); **0 means untraced** — and is
    /// what a v1/v2 frame, which has no field for it, decodes to. A nonzero
    /// ID is carried verbatim through the server's submit path, so the
    /// stage spans recorded for this request (when server-side tracing is
    /// enabled) can be joined with the client's own timings by ID.
    pub trace_id: u64,
}

/// A successful localization answer carried by a [`ScanResponse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePosition {
    /// Predicted floorplan x, in meters.
    pub x: f64,
    /// Predicted floorplan y, in meters.
    pub y: f64,
    /// Version of the model snapshot that produced the answer.
    pub model_version: u64,
}

/// Why a request failed, as a wire-visible status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireStatus {
    /// Backpressure: the server's bounded queue was full and the request
    /// was shed at the door. Retry with backoff.
    Shed = 1,
    /// No model is published for the requested venue.
    UnknownVenue = 2,
    /// The scan's AP count does not match the venue's model.
    DimensionMismatch = 3,
    /// The venue's model has an empty reference set.
    EmptyModel = 4,
    /// The server is draining and no longer accepts requests.
    ShuttingDown = 5,
    /// The connection sent bytes that do not parse as a frame. Sent with
    /// request id 0 as a goodbye: the server closes the connection after
    /// it (a framing error is not recoverable in-stream).
    Malformed = 6,
    /// Any server-side failure without a more specific code — including a
    /// batch that panicked inside the model call (isolated server-side; the
    /// request fails, the server survives).
    Internal = 7,
    /// The request's deadline budget expired while it was still queued; it
    /// never reached the model. Only requests that carried a deadline
    /// (protocol v2, `deadline_us > 0`) can receive this.
    DeadlineExceeded = 8,
    /// The venue's circuit breaker is open: recent batches for it kept
    /// failing, and the server fast-fails the venue without touching the
    /// model until a cooldown passes (rolling back to its last-good model
    /// meanwhile). Retryable — but give it longer than a [`WireStatus::Shed`]
    /// retry. v2-only: in a response to a v1 request it is downgraded to
    /// [`WireStatus::Internal`].
    Unavailable = 9,
}

impl WireStatus {
    /// Decodes a status byte (0 means OK and is handled by the response
    /// decoder, so it is not a `WireStatus`).
    fn from_byte(b: u8) -> Option<WireStatus> {
        Some(match b {
            1 => WireStatus::Shed,
            2 => WireStatus::UnknownVenue,
            3 => WireStatus::DimensionMismatch,
            4 => WireStatus::EmptyModel,
            5 => WireStatus::ShuttingDown,
            6 => WireStatus::Malformed,
            7 => WireStatus::Internal,
            8 => WireStatus::DeadlineExceeded,
            9 => WireStatus::Unavailable,
            _ => return None,
        })
    }
}

impl std::fmt::Display for WireStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireStatus::Shed => "shed (queue full)",
            WireStatus::UnknownVenue => "unknown venue",
            WireStatus::DimensionMismatch => "scan dimension mismatch",
            WireStatus::EmptyModel => "empty model",
            WireStatus::ShuttingDown => "server shutting down",
            WireStatus::Malformed => "malformed frame",
            WireStatus::Internal => "internal error",
            WireStatus::DeadlineExceeded => "deadline exceeded in queue",
            WireStatus::Unavailable => "venue unavailable (breaker open)",
        };
        f.write_str(s)
    }
}

impl From<&stone_serve::ServeError> for WireStatus {
    fn from(e: &stone_serve::ServeError) -> Self {
        use stone_serve::ServeError;
        match e {
            // Both shed causes — shared global capacity and a venue's own
            // sub-queue cap — are the same wire-visible contract: the
            // request was refused under load, retry with backoff. The split
            // stays observable server-side in the per-venue serve stats.
            ServeError::QueueFull | ServeError::VenueQueueFull { .. } => WireStatus::Shed,
            ServeError::UnknownVenue { .. } => WireStatus::UnknownVenue,
            ServeError::ScanDimensionMismatch { .. } => WireStatus::DimensionMismatch,
            ServeError::EmptyModel { .. } => WireStatus::EmptyModel,
            ServeError::ShuttingDown => WireStatus::ShuttingDown,
            ServeError::DeadlineExceeded { .. } => WireStatus::DeadlineExceeded,
            ServeError::VenueUnavailable { .. } => WireStatus::Unavailable,
            // `ServeError` is non_exhaustive; anything future maps to the
            // catch-all rather than silently becoming a different contract.
            _ => WireStatus::Internal,
        }
    }
}

/// One response frame: the echoed request id plus either a position or a
/// [`WireStatus`] error code.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResponse {
    /// The [`ScanRequest::request_id`] this answers (0 for the connection-
    /// level [`WireStatus::Malformed`] goodbye).
    pub request_id: u64,
    /// The answer: a position, or the wire error code.
    pub result: Result<WirePosition, WireStatus>,
}

/// Why a frame failed to encode or decode. Decoding hostile bytes returns
/// one of these — it never panics and never allocates past the caps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the declared content.
    Truncated,
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared length.
        declared: usize,
    },
    /// The version byte is outside
    /// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// The kind byte is not a known message kind.
    BadKind(u8),
    /// The status byte of a response is not a known status.
    BadStatus(u8),
    /// The venue name exceeds [`MAX_VENUE_LEN`] (encode-side only; the wire
    /// length prefix is a single byte, so decode cannot see this).
    VenueTooLong(usize),
    /// The venue name bytes are not UTF-8.
    BadVenueUtf8,
    /// The text bytes of an admin chunk are not UTF-8.
    BadTextUtf8,
    /// The AP count exceeds [`MAX_AP_COUNT`].
    TooManyAps(usize),
    /// The payload has bytes left over after the declared content.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Oversized { declared } => {
                write!(f, "declared payload of {declared} B exceeds the {MAX_FRAME_LEN} B cap")
            }
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (supported: {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                )
            }
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadStatus(s) => write!(f, "unknown status code {s}"),
            WireError::VenueTooLong(n) => {
                write!(f, "venue name of {n} B exceeds the {MAX_VENUE_LEN} B cap")
            }
            WireError::BadVenueUtf8 => write!(f, "venue name is not UTF-8"),
            WireError::BadTextUtf8 => write!(f, "admin chunk text is not UTF-8"),
            WireError::TooManyAps(n) => {
                write!(f, "AP count {n} exceeds the {MAX_AP_COUNT} cap")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked little-endian reader over one payload.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.bytes.len()))
        }
    }

    /// Consumes whatever remains of the payload.
    fn rest(self) -> &'a [u8] {
        self.bytes
    }
}

fn push_header(out: &mut Vec<u8>, version: u8, kind: u8, request_id: u64) {
    out.extend_from_slice(&[version, kind]);
    out.extend_from_slice(&request_id.to_le_bytes());
}

/// Seals a payload into a frame by prefixing its `u32` length.
fn seal(mut payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() >= 4 + HEADER_LEN && payload.len() - 4 <= MAX_FRAME_LEN);
    let len = (payload.len() - 4) as u32;
    payload[..4].copy_from_slice(&len.to_le_bytes());
    payload
}

/// Encodes one request into a ready-to-send frame (length prefix included),
/// as the current [`PROTOCOL_VERSION`].
///
/// # Errors
///
/// [`WireError::VenueTooLong`] / [`WireError::TooManyAps`] when the request
/// exceeds the wire caps — nothing is sent for such a request.
pub fn encode_request(req: &ScanRequest) -> Result<Vec<u8>, WireError> {
    encode_request_version(req, PROTOCOL_VERSION)
}

/// Encodes one request as a **v1** frame — what a not-yet-upgraded client
/// on the old protocol emits. v1 has no deadline field, so the request's
/// `deadline_us` is omitted (exactly as a real v1 client, which cannot
/// express one); the compatibility suites use this to pin that an upgraded
/// server still serves the old fleet.
///
/// # Errors
///
/// Same cap errors as [`encode_request`].
pub fn encode_request_v1(req: &ScanRequest) -> Result<Vec<u8>, WireError> {
    encode_request_version(req, 1)
}

/// Encodes one request as a **v2** frame — deadline but no trace ID, what
/// the pre-observability fleet emits. The interop suites use this to pin
/// that a v3 server still serves v2 clients (their requests simply decode
/// untraced).
///
/// # Errors
///
/// Same cap errors as [`encode_request`].
pub fn encode_request_v2(req: &ScanRequest) -> Result<Vec<u8>, WireError> {
    encode_request_version(req, 2)
}

fn encode_request_version(req: &ScanRequest, version: u8) -> Result<Vec<u8>, WireError> {
    let venue = req.venue.as_bytes();
    if venue.len() > MAX_VENUE_LEN {
        return Err(WireError::VenueTooLong(venue.len()));
    }
    if req.rssi.len() > MAX_AP_COUNT {
        return Err(WireError::TooManyAps(req.rssi.len()));
    }
    let mut out =
        Vec::with_capacity(4 + HEADER_LEN + 4 + 8 + 1 + venue.len() + 2 + 4 * req.rssi.len());
    out.extend_from_slice(&[0; 4]); // length backpatched by seal()
    push_header(&mut out, version, KIND_REQUEST, req.request_id);
    if version >= 2 {
        out.extend_from_slice(&req.deadline_us.to_le_bytes());
    }
    if version >= 3 {
        out.extend_from_slice(&req.trace_id.to_le_bytes());
    }
    out.push(venue.len() as u8);
    out.extend_from_slice(venue);
    out.extend_from_slice(&(req.rssi.len() as u16).to_le_bytes());
    for &v in &req.rssi {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Ok(seal(out))
}

/// Encodes one response into a ready-to-send frame (length prefix
/// included). `version` is the protocol version **of the request being
/// answered** — the server echoes it so a v1 client only ever receives v1
/// bytes; statuses v1 cannot name ([`WireStatus::Unavailable`]) are
/// downgraded to [`WireStatus::Internal`] in a v1 response.
#[must_use]
pub fn encode_response(resp: &ScanResponse, version: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + HEADER_LEN + 1 + 24);
    out.extend_from_slice(&[0; 4]);
    push_header(&mut out, version, KIND_RESPONSE, resp.request_id);
    match &resp.result {
        Ok(pos) => {
            out.push(0);
            out.extend_from_slice(&pos.x.to_le_bytes());
            out.extend_from_slice(&pos.y.to_le_bytes());
            out.extend_from_slice(&pos.model_version.to_le_bytes());
        }
        Err(status) => {
            let status = if version < 2 {
                match status {
                    // A v1 request cannot carry a deadline, so this arm is
                    // effectively Unavailable-only; both downgrade rather
                    // than ship a byte the old decoder rejects.
                    WireStatus::DeadlineExceeded | WireStatus::Unavailable => WireStatus::Internal,
                    s => *s,
                }
            } else {
                *status
            };
            out.push(status as u8);
        }
    }
    seal(out)
}

/// Validates version + kind; returns the version and request id.
fn decode_header(c: &mut Cursor<'_>, want_kind: u8) -> Result<(u8, u64), WireError> {
    let version = c.u8()?;
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let kind = c.u8()?;
    if kind != want_kind {
        return Err(WireError::BadKind(kind));
    }
    Ok((version, c.u64()?))
}

/// Decodes one request payload (the bytes *after* the length prefix).
/// Accepts every supported protocol version; a v1 payload (no deadline
/// field) decodes with `deadline_us == 0`. The returned version is what
/// [`encode_response`] must echo when answering.
///
/// # Errors
///
/// A [`WireError`] describing the first malformation found; hostile input
/// never panics and never allocates beyond the [`MAX_AP_COUNT`] cap.
pub fn decode_request(payload: &[u8]) -> Result<(ScanRequest, u8), WireError> {
    let mut c = Cursor { bytes: payload };
    let (version, request_id) = decode_header(&mut c, KIND_REQUEST)?;
    let deadline_us = if version >= 2 { c.u32()? } else { 0 };
    let trace_id = if version >= 3 { c.u64()? } else { 0 };
    let venue_len = c.u8()? as usize;
    let venue =
        std::str::from_utf8(c.take(venue_len)?).map_err(|_| WireError::BadVenueUtf8)?.to_string();
    let ap_count = c.u16()? as usize;
    if ap_count > MAX_AP_COUNT {
        return Err(WireError::TooManyAps(ap_count));
    }
    // The cursor bounds-checks every element read, so a count larger than
    // the bytes present fails with Truncated before the vector grows past
    // what the payload could actually hold.
    let mut rssi = Vec::with_capacity(ap_count.min(payload.len() / 4 + 1));
    for _ in 0..ap_count {
        rssi.push(c.f32()?);
    }
    c.finish()?;
    Ok((ScanRequest { request_id, venue, rssi, deadline_us, trace_id }, version))
}

/// Decodes one response payload (the bytes *after* the length prefix).
/// Accepts every supported protocol version (the response layout is
/// identical in v1 and v2; only the status space grew).
///
/// # Errors
///
/// A [`WireError`] describing the first malformation found.
pub fn decode_response(payload: &[u8]) -> Result<ScanResponse, WireError> {
    let mut c = Cursor { bytes: payload };
    let (_version, request_id) = decode_header(&mut c, KIND_RESPONSE)?;
    let status = c.u8()?;
    let result = if status == 0 {
        Ok(WirePosition { x: c.f64()?, y: c.f64()?, model_version: c.u64()? })
    } else {
        Err(WireStatus::from_byte(status).ok_or(WireError::BadStatus(status))?)
    };
    c.finish()?;
    Ok(ScanResponse { request_id, result })
}

/// Which admin surface a telemetry query asks for (protocol v3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminQuery {
    /// Prometheus-style exposition text: the serve stats (aggregate and
    /// per venue), breaker states, published model versions, the net
    /// front-end's own counters, the kernel-profiling registry and the
    /// span ledger.
    Stats,
    /// The span ring as text, one `trace_id stage start_us dur_us` line
    /// per record — newest window of traced requests.
    Trace,
}

/// One chunk of an admin reply. Bodies longer than
/// [`MAX_ADMIN_TEXT_LEN`] arrive as several chunks sharing the query's
/// request id; `last` marks the final one. Chunks for one request id are
/// contiguous and in order (the writer thread serializes them), so the
/// client just concatenates until `last`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminChunk {
    /// The admin query's request id, echoed on every chunk.
    pub request_id: u64,
    /// True on the final chunk of this reply.
    pub last: bool,
    /// This chunk's slice of the reply text.
    pub text: String,
}

/// Encodes an admin telemetry query (header-only payload, always the
/// current protocol version — admin frames are v3-born).
#[must_use]
pub fn encode_admin_request(query: AdminQuery, request_id: u64) -> Vec<u8> {
    let kind = match query {
        AdminQuery::Stats => KIND_STATS_REQUEST,
        AdminQuery::Trace => KIND_TRACE_REQUEST,
    };
    let mut out = Vec::with_capacity(4 + HEADER_LEN);
    out.extend_from_slice(&[0; 4]);
    push_header(&mut out, PROTOCOL_VERSION, kind, request_id);
    seal(out)
}

/// Decodes an admin telemetry query payload.
///
/// # Errors
///
/// [`WireError::BadKind`] when the payload is not an admin query, plus the
/// usual header malformations.
pub fn decode_admin_request(payload: &[u8]) -> Result<(AdminQuery, u64), WireError> {
    let mut c = Cursor { bytes: payload };
    let version = c.u8()?;
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let query = match c.u8()? {
        KIND_STATS_REQUEST => AdminQuery::Stats,
        KIND_TRACE_REQUEST => AdminQuery::Trace,
        k => return Err(WireError::BadKind(k)),
    };
    let request_id = c.u64()?;
    c.finish()?;
    Ok((query, request_id))
}

/// Encodes an admin reply as one or more ready-to-send chunk frames, each
/// within [`MAX_FRAME_LEN`], split at UTF-8 character boundaries. Always
/// yields at least one chunk (an empty reply is a single empty `last`
/// chunk).
#[must_use]
pub fn encode_admin_chunks(request_id: u64, text: &str) -> Vec<Vec<u8>> {
    let bytes = text.as_bytes();
    let mut chunks = Vec::new();
    let mut start = 0;
    loop {
        let mut end = (start + MAX_ADMIN_TEXT_LEN).min(bytes.len());
        // Back off to a char boundary so every chunk is valid UTF-8 on its
        // own (MAX_ADMIN_TEXT_LEN ≥ 4 guarantees progress).
        while !text.is_char_boundary(end) {
            end -= 1;
        }
        let last = end == bytes.len();
        let mut out = Vec::with_capacity(4 + HEADER_LEN + 1 + (end - start));
        out.extend_from_slice(&[0; 4]);
        push_header(&mut out, PROTOCOL_VERSION, KIND_ADMIN_CHUNK, request_id);
        out.push(u8::from(last));
        out.extend_from_slice(&bytes[start..end]);
        chunks.push(seal(out));
        if last {
            return chunks;
        }
        start = end;
    }
}

/// Decodes one admin chunk payload.
///
/// # Errors
///
/// [`WireError::BadTextUtf8`] when the chunk's text bytes are not UTF-8,
/// plus the usual header malformations.
pub fn decode_admin_chunk(payload: &[u8]) -> Result<AdminChunk, WireError> {
    let mut c = Cursor { bytes: payload };
    let (_version, request_id) = decode_header(&mut c, KIND_ADMIN_CHUNK)?;
    let last = c.u8()? != 0;
    let text = std::str::from_utf8(c.rest()).map_err(|_| WireError::BadTextUtf8)?.to_string();
    Ok(AdminChunk { request_id, last, text })
}

/// The kind byte of a decoded-but-unparsed payload — what a server's
/// reader uses to route a frame to the right decoder. `None` when the
/// payload is too short to carry a header.
#[must_use]
pub fn payload_kind(payload: &[u8]) -> Option<u8> {
    (payload.len() >= HEADER_LEN).then(|| payload[1])
}

/// An incremental frame accumulator: push whatever bytes the socket
/// yielded, pop complete payloads. This is what makes partial reads (slow
/// writers dribbling one byte at a time, short nonblocking reads) safe —
/// no byte is ever consumed until its whole frame arrived.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the socket.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete payload (without its length prefix), or
    /// `None` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] when the declared length exceeds
    /// [`MAX_FRAME_LEN`], or [`WireError::Truncated`] when it is too short
    /// to hold a header — the stream is desynchronized and the connection
    /// must be closed.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if declared > MAX_FRAME_LEN {
            return Err(WireError::Oversized { declared });
        }
        if declared < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if self.buf.len() < 4 + declared {
            return Ok(None);
        }
        let payload = self.buf[4..4 + declared].to_vec();
        self.buf.drain(..4 + declared);
        Ok(Some(payload))
    }

    /// Bytes currently buffered (incomplete frame residue).
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// Formats a latency for the loadgen / example reports.
#[must_use]
pub fn fmt_latency(d: Option<Duration>) -> String {
    d.map_or_else(|| "-".into(), |d| format!("{d:.1?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> ScanRequest {
        ScanRequest {
            request_id: 42,
            venue: "office-east".into(),
            rssi: vec![-60.0, -100.0, f32::NAN, 0.0, -71.5],
            deadline_us: 2_500,
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    #[test]
    fn request_roundtrip_is_bit_exact() {
        let frame = encode_request(&req()).unwrap();
        let (got, version) = decode_request(&frame[4..]).unwrap();
        assert_eq!(version, PROTOCOL_VERSION);
        assert_eq!(got.request_id, 42);
        assert_eq!(got.venue, "office-east");
        assert_eq!(got.deadline_us, 2_500);
        assert_eq!(got.trace_id, 0xDEAD_BEEF_CAFE_F00D);
        // NaN-safe bit comparison.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got.rssi), bits(&req().rssi));
    }

    #[test]
    fn legacy_v1_requests_still_decode_without_a_deadline() {
        let frame = encode_request_v1(&req()).unwrap();
        assert_eq!(frame[4], 1, "v1 frame carries version byte 1");
        let (got, version) = decode_request(&frame[4..]).unwrap();
        assert_eq!(version, 1);
        assert_eq!(got.venue, "office-east");
        assert_eq!(got.deadline_us, 0, "v1 has no deadline field");
        assert_eq!(got.trace_id, 0, "v1 has no trace field");
        // The v1 frame is exactly 12 bytes shorter: the missing deadline
        // (4 B, v2) and trace id (8 B, v3).
        assert_eq!(frame.len() + 4 + 8, encode_request(&req()).unwrap().len());
    }

    #[test]
    fn v2_requests_decode_untraced() {
        let frame = encode_request_v2(&req()).unwrap();
        assert_eq!(frame[4], 2, "v2 frame carries version byte 2");
        let (got, version) = decode_request(&frame[4..]).unwrap();
        assert_eq!(version, 2);
        assert_eq!(got.deadline_us, 2_500, "v2 keeps the deadline");
        assert_eq!(got.trace_id, 0, "v2 has no trace field");
        assert_eq!(frame.len() + 8, encode_request(&req()).unwrap().len());
    }

    #[test]
    fn response_roundtrips_both_arms() {
        let ok = ScanResponse {
            request_id: 7,
            result: Ok(WirePosition { x: 1.25, y: -3.5, model_version: 9 }),
        };
        let err = ScanResponse { request_id: 8, result: Err(WireStatus::Shed) };
        for resp in [&ok, &err] {
            for version in [1, PROTOCOL_VERSION] {
                let frame = encode_response(resp, version);
                assert_eq!(frame[4], version);
                assert_eq!(&decode_response(&frame[4..]).unwrap(), resp);
            }
        }
    }

    #[test]
    fn v2_only_statuses_downgrade_in_v1_responses() {
        for status in [WireStatus::Unavailable, WireStatus::DeadlineExceeded] {
            let resp = ScanResponse { request_id: 3, result: Err(status) };
            let v1 = decode_response(&encode_response(&resp, 1)[4..]).unwrap();
            assert_eq!(v1.result, Err(WireStatus::Internal), "{status:?} must downgrade in v1");
            let v2 = decode_response(&encode_response(&resp, 2)[4..]).unwrap();
            assert_eq!(v2.result, Err(status));
        }
    }

    #[test]
    fn caps_reject_before_allocation() {
        let huge = ScanRequest {
            request_id: 1,
            venue: "v".into(),
            rssi: vec![0.0; 3000],
            deadline_us: 0,
            trace_id: 0,
        };
        assert_eq!(encode_request(&huge).unwrap_err(), WireError::TooManyAps(3000));
        let long = ScanRequest {
            request_id: 1,
            venue: "v".repeat(300),
            rssi: vec![],
            deadline_us: 0,
            trace_id: 0,
        };
        assert_eq!(encode_request(&long).unwrap_err(), WireError::VenueTooLong(300));

        // A forged payload declaring more APs than the cap.
        let mut payload = Vec::new();
        push_header(&mut payload, PROTOCOL_VERSION, KIND_REQUEST, 1);
        payload.extend_from_slice(&0u32.to_le_bytes()); // no deadline
        payload.extend_from_slice(&0u64.to_le_bytes()); // untraced
        payload.push(0); // empty venue
        payload.extend_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(decode_request(&payload).unwrap_err(), WireError::TooManyAps(65535));
    }

    #[test]
    fn frame_buffer_reassembles_byte_dribble() {
        let frame = encode_request(&req()).unwrap();
        let mut fb = FrameBuffer::new();
        for &b in &frame[..frame.len() - 1] {
            fb.push_bytes(&[b]);
            assert_eq!(fb.next_payload().unwrap(), None);
        }
        fb.push_bytes(&frame[frame.len() - 1..]);
        let payload = fb.next_payload().unwrap().unwrap();
        assert_eq!(decode_request(&payload).unwrap().0.venue, "office-east");
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_unallocated() {
        let mut fb = FrameBuffer::new();
        fb.push_bytes(&u32::MAX.to_le_bytes());
        assert_eq!(
            fb.next_payload().unwrap_err(),
            WireError::Oversized { declared: u32::MAX as usize }
        );
    }

    #[test]
    fn admin_request_roundtrips_both_queries() {
        for query in [AdminQuery::Stats, AdminQuery::Trace] {
            let frame = encode_admin_request(query, 77);
            assert_eq!(decode_admin_request(&frame[4..]).unwrap(), (query, 77));
            // The reader's router sees the right kind byte.
            let kind = payload_kind(&frame[4..]).unwrap();
            assert_eq!(kind, if query == AdminQuery::Stats { 3 } else { 4 });
        }
        // A scan request payload is not an admin query.
        let scan = encode_request(&req()).unwrap();
        assert_eq!(decode_admin_request(&scan[4..]).unwrap_err(), WireError::BadKind(KIND_REQUEST));
    }

    #[test]
    fn admin_chunks_split_reassemble_and_stay_within_the_frame_cap() {
        // Multi-byte chars across the split boundary exercise the UTF-8
        // backoff; 2.5 chunks' worth of text exercises the chunk loop.
        let text = "é".repeat(MAX_ADMIN_TEXT_LEN * 5 / 4);
        let chunks = encode_admin_chunks(9, &text);
        assert!(chunks.len() >= 3, "long body splits into several chunks");
        let mut rebuilt = String::new();
        for (i, frame) in chunks.iter().enumerate() {
            assert!(frame.len() - 4 <= MAX_FRAME_LEN, "chunk within the frame cap");
            let chunk = decode_admin_chunk(&frame[4..]).unwrap();
            assert_eq!(chunk.request_id, 9);
            assert_eq!(chunk.last, i == chunks.len() - 1, "only the final chunk is last");
            rebuilt.push_str(&chunk.text);
        }
        assert_eq!(rebuilt, text, "chunks concatenate back to the body");

        // An empty reply is still one (empty, last) chunk.
        let empty = encode_admin_chunks(3, "");
        assert_eq!(empty.len(), 1);
        let chunk = decode_admin_chunk(&empty[0][4..]).unwrap();
        assert!(chunk.last && chunk.text.is_empty());
    }

    #[test]
    fn wrong_version_and_kind_are_rejected() {
        let mut frame = encode_request(&req()).unwrap();
        frame[4] = 9;
        assert_eq!(decode_request(&frame[4..]).unwrap_err(), WireError::BadVersion(9));
        let mut frame = encode_request(&req()).unwrap();
        frame[5] = 77;
        assert_eq!(decode_request(&frame[4..]).unwrap_err(), WireError::BadKind(77));
    }
}
