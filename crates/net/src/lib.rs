//! # stone-net
//!
//! The framed-TCP front-end for [`stone_serve`]: the wire that turns the
//! in-process batching localization server into something phones on a
//! venue's network can actually query. Std-only (a `TcpListener`, threads
//! and channels — the workspace builds offline; see the `shims/` policy).
//!
//! Three pieces:
//!
//! * [`codec`] — a length-prefixed, versioned binary protocol for scan
//!   requests and position responses, with hard caps on frame size, venue
//!   length and AP count enforced *before* any allocation. Hostile bytes
//!   produce a [`WireError`], never a panic.
//! * [`NetServer`] — an accept loop plus a reader/writer thread pair per
//!   connection. Readers feed the inner server's bounded queue through the
//!   fail-fast callback submit, so a full queue becomes a wire-visible
//!   [`WireStatus::Shed`] response instead of a stalled connection;
//!   writers send responses back in completion order. Shutdown drains
//!   gracefully: stop accepting, half-close reads, answer everything
//!   accepted, flush, join every thread.
//! * [`NetClient`] — a blocking client that can also pipeline: fire
//!   requests open-loop and drain responses opportunistically, matching
//!   them by the echoed request id (what `examples/loadgen.rs`'s fleet
//!   simulator runs on).
//!
//! A misbehaving connection — half-open, truncated mid-frame, dribbling
//! bytes, sending garbage — affects only itself: the worst it gets is a
//! [`WireStatus::Malformed`] goodbye and a close, while every other
//! connection keeps being served (`tests/fault_injection.rs` pins this).
//!
//! Since PR 9 the wire carries the resilience contract end to end: protocol
//! v2 requests hold a **deadline budget** (expired requests answer
//! [`WireStatus::DeadlineExceeded`] without touching the model), servers
//! answer v1 clients in v1 (see [`PROTOCOL_VERSION`] for the compatibility
//! story), and [`NetClient`] can carry a [`RetryPolicy`] that retries only
//! transient failures — sheds, a draining server, broken connections
//! (reconnecting first) — with deterministic jittered backoff.
//!
//! Protocol v3 adds the observability surface: requests carry a **trace
//! id** (0 = untraced) that rides through to the server's stage spans, and
//! two header-only **admin queries** ([`codec::AdminQuery`]) answer with
//! chunked text — [`NetClient::fetch_stats`] returns the full telemetry
//! surface as Prometheus-style exposition (serve counters, latency
//! histograms, breaker states, model versions, wire counters, kernel
//! profiling, span ledger) and [`NetClient::fetch_trace`] dumps the span
//! ring. Setting `STONE_TRACE=1` where the server starts arms tracing
//! process-wide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;

mod client;
mod server;

pub use client::{ClientError, NetClient, RetryPolicy};
pub use codec::{
    AdminChunk, AdminQuery, ScanRequest, ScanResponse, WireError, WirePosition, WireStatus,
    MAX_ADMIN_TEXT_LEN, MAX_AP_COUNT, MAX_FRAME_LEN, MAX_VENUE_LEN, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
pub use server::{NetServer, NetStatsSnapshot};
