//! A blocking (optionally pipelining) client for the framed-TCP protocol.
//!
//! [`NetClient::locate`] is the one-call path: send a scan, wait for its
//! answer. The fleet loadgen instead **pipelines**: [`NetClient::send`]
//! fires requests open-loop and [`NetClient::try_recv`] opportunistically
//! drains whatever responses have arrived, matching them back to requests
//! by the echoed id — which is what lets one thread simulate a device that
//! keeps scanning regardless of how far behind the server is.
//!
//! A client can carry a [`RetryPolicy`]: the blocking `locate` paths then
//! retry **transient** failures only — [`WireStatus::Shed`] (backpressure),
//! [`WireStatus::ShuttingDown`], and connection errors (reconnecting first)
//! — with exponential backoff and deterministic, seed-derived jitter.
//! Terminal answers (unknown venue, dimension mismatch, a deadline already
//! spent, an open breaker) are never retried: hammering a server that just
//! told you why the request cannot succeed is how retry storms start.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::codec::{
    decode_admin_chunk, decode_response, encode_admin_request, encode_request, payload_kind,
    AdminQuery, FrameBuffer, ScanRequest, ScanResponse, WireError, WirePosition, WireStatus,
    KIND_ADMIN_CHUNK,
};

/// How the blocking `locate` paths of a [`NetClient`] handle transient
/// failures. [`RetryPolicy::none`] (the [`NetClient::connect`] default)
/// surfaces every error to the caller — existing backpressure contracts see
/// every shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per `locate`, the first included; 1 disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Cap on the (pre-jitter) exponential backoff.
    pub max_backoff: Duration,
    /// Lifetime cap on retries across the whole client — the anti-
    /// retry-storm valve: once spent, errors surface immediately even if
    /// `max_attempts` would allow another try. `u32::MAX` means unlimited.
    pub retry_budget: u32,
    /// Seed for the deterministic jitter: each backoff is scaled by a
    /// factor in `[0.5, 1.0)` derived from `jitter_seed ^ attempt`, so a
    /// fleet of clients with different seeds decorrelates without any
    /// global randomness (reruns stay reproducible).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces to the caller immediately.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            retry_budget: 0,
            jitter_seed: 0,
        }
    }

    /// A small default: 3 tries, 1 ms base backoff capped at 50 ms,
    /// unlimited budget, jittered by `seed`.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            retry_budget: u32::MAX,
            jitter_seed: seed,
        }
    }

    /// The sleep before retry number `attempt` (1-based): exponential,
    /// capped, jittered into `[0.5, 1.0)` of the nominal value.
    fn backoff(&self, attempt: u32) -> Duration {
        let nominal = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        let jitter = 0.5 + 0.5 * frac64(splitmix64(self.jitter_seed ^ u64::from(attempt)));
        nominal.mul_f64(jitter)
    }
}

/// SplitMix64 — the workspace's stock seed scrambler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a u64 to `[0, 1)`.
fn frac64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket error (includes timeouts on the blocking paths).
    Io(std::io::Error),
    /// The server sent bytes that do not parse as a response frame.
    Wire(WireError),
    /// The request itself violates the wire caps and was never sent.
    Encode(WireError),
    /// The server closed the connection (EOF).
    Closed,
    /// The server answered the request with a wire error code.
    Status(WireStatus),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "bad response frame: {e}"),
            ClientError::Encode(e) => write!(f, "request violates wire caps: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Status(s) => write!(f, "server error: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One framed-TCP connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    frames: FrameBuffer,
    next_id: u64,
    policy: RetryPolicy,
    /// Where we connected — the reconnect target after a broken pipe.
    peer: SocketAddr,
    read_timeout: Option<Duration>,
    total_retries: u64,
}

impl NetClient {
    /// Connects to a server with no retry policy ([`RetryPolicy::none`]).
    /// `TCP_NODELAY` is enabled — frames are small and latency-sensitive.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, RetryPolicy::none())
    }

    /// Connects with a [`RetryPolicy`] applied by the blocking `locate`
    /// paths.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from connecting.
    pub fn connect_with(addr: impl ToSocketAddrs, policy: RetryPolicy) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(Self {
            stream,
            frames: FrameBuffer::new(),
            next_id: 1,
            policy,
            peer,
            read_timeout: None,
            total_retries: 0,
        })
    }

    /// Replaces the retry policy (e.g. to enable retries after probing the
    /// server once without them).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Retries performed over this client's lifetime (across reconnects) —
    /// the loadgen's retry-amplification numerator.
    #[must_use]
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// The local socket address.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Sends one scan without waiting, returning the request id its
    /// response will echo (ids count up from 1 per connection).
    ///
    /// # Errors
    ///
    /// [`ClientError::Encode`] when the request violates the wire caps
    /// (nothing is sent), or [`ClientError::Io`] from the socket.
    pub fn send(&mut self, venue: &str, rssi: &[f32]) -> Result<u64, ClientError> {
        self.send_deadline(venue, rssi, 0)
    }

    /// [`NetClient::send`] with a deadline budget in microseconds (0 = no
    /// deadline): if the request is still queued server-side when the
    /// budget runs out, its response is [`WireStatus::DeadlineExceeded`]
    /// and the model is never consulted.
    ///
    /// When tracing is enabled in this process
    /// ([`stone_obs::tracing_enabled`]), the request carries a freshly
    /// minted trace ID on the wire so the server's stage spans attribute
    /// to it; otherwise the trace-id field is 0 and the server mints its
    /// own (or none, if tracing is off server-side too).
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::send`].
    pub fn send_deadline(
        &mut self,
        venue: &str,
        rssi: &[f32],
        deadline_us: u32,
    ) -> Result<u64, ClientError> {
        let request_id = self.next_id;
        let trace_id = if stone_obs::tracing_enabled() { stone_obs::mint_trace_id() } else { 0 };
        let frame = encode_request(&ScanRequest {
            request_id,
            venue: venue.to_string(),
            rssi: rssi.to_vec(),
            deadline_us,
            trace_id,
        })
        .map_err(ClientError::Encode)?;
        self.stream.write_all(&frame)?;
        self.next_id += 1;
        Ok(request_id)
    }

    /// Pops one response if a complete frame has already arrived, without
    /// blocking. Returns `Ok(None)` when the socket has nothing ready.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF, [`ClientError::Wire`] on an
    /// unparseable frame, or [`ClientError::Io`].
    pub fn try_recv(&mut self) -> Result<Option<ScanResponse>, ClientError> {
        if let Some(payload) = self.frames.next_payload().map_err(ClientError::Wire)? {
            return decode_response(&payload).map(Some).map_err(ClientError::Wire);
        }
        self.stream.set_nonblocking(true)?;
        let fill = self.fill_from_socket();
        self.stream.set_nonblocking(false)?;
        let closed = match fill {
            Ok(()) => false,
            Err(ClientError::Closed) => true,
            Err(e) => return Err(e),
        };
        match self.frames.next_payload().map_err(ClientError::Wire)? {
            Some(payload) => decode_response(&payload).map(Some).map_err(ClientError::Wire),
            // EOF with no frame ready: surface the close.
            None if closed => Err(ClientError::Closed),
            None => Ok(None),
        }
    }

    /// Blocks until the next response arrives (in completion order, which
    /// for pipelined traffic is not necessarily send order).
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF, [`ClientError::Wire`] on an
    /// unparseable frame, or [`ClientError::Io`] (including read
    /// timeouts configured on the socket).
    pub fn recv(&mut self) -> Result<ScanResponse, ClientError> {
        let payload = self.next_payload_blocking()?;
        decode_response(&payload).map_err(ClientError::Wire)
    }

    /// Sends one scan and blocks until **its** answer arrives (responses
    /// to other pipelined requests received meanwhile are decoded and
    /// dropped — use [`NetClient::send`]/[`NetClient::recv`] directly when
    /// pipelining). Transient failures are retried per the client's
    /// [`RetryPolicy`] (none by default).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; a server-side error code surfaces as
    /// [`ClientError::Status`].
    pub fn locate(&mut self, venue: &str, rssi: &[f32]) -> Result<WirePosition, ClientError> {
        self.locate_deadline_us(venue, rssi, 0)
    }

    /// [`NetClient::locate`] with a per-attempt deadline budget in
    /// microseconds (see [`NetClient::send_deadline`]). A
    /// [`WireStatus::DeadlineExceeded`] answer is **not** retried — the
    /// budget is the client saying the answer is worthless after that long.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; a server-side error code surfaces as
    /// [`ClientError::Status`].
    pub fn locate_deadline_us(
        &mut self,
        venue: &str,
        rssi: &[f32],
        deadline_us: u32,
    ) -> Result<WirePosition, ClientError> {
        let mut attempt = 1u32;
        loop {
            let err = match self.locate_once(venue, rssi, deadline_us) {
                Ok(pos) => return Ok(pos),
                Err(e) => e,
            };
            if attempt >= self.policy.max_attempts
                || self.total_retries >= u64::from(self.policy.retry_budget)
                || !retryable(&err)
            {
                return Err(err);
            }
            // A dead connection gets one reconnect try per retry; if it
            // fails, keep the broken stream — the next attempt fails fast
            // and may retry again, until attempts or budget run out.
            if matches!(err, ClientError::Closed | ClientError::Io(_)) {
                self.reconnect();
            }
            self.total_retries += 1;
            std::thread::sleep(self.policy.backoff(attempt));
            attempt += 1;
        }
    }

    /// One send + wait-for-my-id cycle, no retries.
    fn locate_once(
        &mut self,
        venue: &str,
        rssi: &[f32],
        deadline_us: u32,
    ) -> Result<WirePosition, ClientError> {
        let id = self.send_deadline(venue, rssi, deadline_us)?;
        loop {
            let resp = self.recv()?;
            if resp.request_id == id {
                return resp.result.map_err(ClientError::Status);
            }
        }
    }

    /// Fetches the server's full stats surface as Prometheus-style
    /// exposition text (parseable with [`stone_obs::parse_exposition`]):
    /// serve counters and latency histograms, breaker states, model
    /// versions, wire counters, the kernel-profiling registry and the span
    /// ledger.
    ///
    /// Best sent on an **idle** connection: scan responses to still-
    /// pipelined requests that arrive while the reply streams in are
    /// decoded and dropped, exactly like [`NetClient::locate`]'s wait
    /// loop.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF, [`ClientError::Wire`] on an
    /// unparseable frame, or [`ClientError::Io`].
    pub fn fetch_stats(&mut self) -> Result<String, ClientError> {
        self.fetch_admin(AdminQuery::Stats)
    }

    /// Fetches the server's span-ring snapshot as text — one
    /// `trace_id=… stage=… start_us=… dur_us=…` line per record after a
    /// `#` header carrying the ledger. Same idle-connection caveat as
    /// [`NetClient::fetch_stats`].
    ///
    /// # Errors
    ///
    /// Same as [`NetClient::fetch_stats`].
    pub fn fetch_trace(&mut self) -> Result<String, ClientError> {
        self.fetch_admin(AdminQuery::Trace)
    }

    /// Sends one admin query and concatenates its reply chunks until the
    /// `last` flag (the server's writer thread keeps them contiguous).
    fn fetch_admin(&mut self, query: AdminQuery) -> Result<String, ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&encode_admin_request(query, request_id))?;
        let mut text = String::new();
        loop {
            let payload = self.next_payload_blocking()?;
            if payload_kind(&payload) != Some(KIND_ADMIN_CHUNK) {
                // A scan response to a still-pipelined request: decode (to
                // keep framing honest) and drop, as locate's wait loop does.
                decode_response(&payload).map_err(ClientError::Wire)?;
                continue;
            }
            let chunk = decode_admin_chunk(&payload).map_err(ClientError::Wire)?;
            if chunk.request_id != request_id {
                continue; // a stale admin reply from an abandoned fetch
            }
            text.push_str(&chunk.text);
            if chunk.last {
                return Ok(text);
            }
        }
    }

    /// Blocks until one complete frame payload is available, whatever its
    /// kind.
    fn next_payload_blocking(&mut self) -> Result<Vec<u8>, ClientError> {
        loop {
            if let Some(payload) = self.frames.next_payload().map_err(ClientError::Wire)? {
                return Ok(payload);
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.frames.push_bytes(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Re-dials the peer, replacing the dead stream and dropping any
    /// half-received frame residue (it belonged to the old connection).
    /// Returns whether the dial succeeded.
    fn reconnect(&mut self) -> bool {
        let Ok(stream) = TcpStream::connect(self.peer) else { return false };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(self.read_timeout);
        self.stream = stream;
        self.frames = FrameBuffer::new();
        true
    }

    /// Sets the blocking-read timeout used by [`NetClient::recv`] /
    /// [`NetClient::locate`] (`None` blocks forever). Survives a
    /// retry-triggered reconnect.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.read_timeout = timeout;
        self.stream.set_read_timeout(timeout)
    }

    /// Half-closes the write side, telling the server this client will
    /// send no more requests (pending responses can still be read).
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket.
    pub fn finish_sending(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Drains socket bytes into the frame buffer until `WouldBlock`.
    fn fill_from_socket(&mut self) -> Result<(), ClientError> {
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.frames.push_bytes(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Whether an error is worth another try under a [`RetryPolicy`]:
/// backpressure sheds, a draining server, and connection-level failures.
/// Everything else is terminal — the server *answered*; asking again with
/// the same request reproduces the same answer at best and a retry storm at
/// worst.
fn retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Status(WireStatus::Shed | WireStatus::ShuttingDown) => true,
        ClientError::Closed => true,
        ClientError::Io(e) => matches!(
            e.kind(),
            ErrorKind::BrokenPipe
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::ConnectionRefused
                | ErrorKind::NotConnected
                | ErrorKind::UnexpectedEof
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_jittered_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(40),
            retry_budget: u32::MAX,
            jitter_seed: 7,
        };
        for attempt in 1..10 {
            let nominal = p
                .base_backoff
                .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
                .min(p.max_backoff);
            let b = p.backoff(attempt);
            assert_eq!(b, p.backoff(attempt), "same seed + attempt → same backoff");
            assert!(b >= nominal.mul_f64(0.5) && b < nominal, "jitter stays in [0.5, 1.0)");
        }
        // Different seeds decorrelate (not a proof, but the obvious check).
        let q = RetryPolicy { jitter_seed: 8, ..p };
        assert_ne!(p.backoff(3), q.backoff(3));
    }

    #[test]
    fn only_transient_errors_are_retryable() {
        assert!(retryable(&ClientError::Status(WireStatus::Shed)));
        assert!(retryable(&ClientError::Status(WireStatus::ShuttingDown)));
        assert!(retryable(&ClientError::Closed));
        assert!(retryable(&ClientError::Io(std::io::Error::from(ErrorKind::BrokenPipe))));
        for terminal in [
            WireStatus::UnknownVenue,
            WireStatus::DimensionMismatch,
            WireStatus::EmptyModel,
            WireStatus::Malformed,
            WireStatus::Internal,
            WireStatus::DeadlineExceeded,
            WireStatus::Unavailable,
        ] {
            assert!(!retryable(&ClientError::Status(terminal)), "{terminal:?} must be terminal");
        }
        assert!(!retryable(&ClientError::Io(std::io::Error::from(ErrorKind::TimedOut))));
        assert!(!retryable(&ClientError::Wire(WireError::Truncated)));
    }
}
