//! A blocking (optionally pipelining) client for the framed-TCP protocol.
//!
//! [`NetClient::locate`] is the one-call path: send a scan, wait for its
//! answer. The fleet loadgen instead **pipelines**: [`NetClient::send`]
//! fires requests open-loop and [`NetClient::try_recv`] opportunistically
//! drains whatever responses have arrived, matching them back to requests
//! by the echoed id — which is what lets one thread simulate a device that
//! keeps scanning regardless of how far behind the server is.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::codec::{
    decode_response, encode_request, FrameBuffer, ScanRequest, ScanResponse, WireError,
    WirePosition, WireStatus,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket error (includes timeouts on the blocking paths).
    Io(std::io::Error),
    /// The server sent bytes that do not parse as a response frame.
    Wire(WireError),
    /// The request itself violates the wire caps and was never sent.
    Encode(WireError),
    /// The server closed the connection (EOF).
    Closed,
    /// The server answered the request with a wire error code.
    Status(WireStatus),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "bad response frame: {e}"),
            ClientError::Encode(e) => write!(f, "request violates wire caps: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Status(s) => write!(f, "server error: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One framed-TCP connection to a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    frames: FrameBuffer,
    next_id: u64,
}

impl NetClient {
    /// Connects to a server. `TCP_NODELAY` is enabled — frames are small
    /// and latency-sensitive.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, frames: FrameBuffer::new(), next_id: 1 })
    }

    /// The local socket address.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Sends one scan without waiting, returning the request id its
    /// response will echo (ids count up from 1 per connection).
    ///
    /// # Errors
    ///
    /// [`ClientError::Encode`] when the request violates the wire caps
    /// (nothing is sent), or [`ClientError::Io`] from the socket.
    pub fn send(&mut self, venue: &str, rssi: &[f32]) -> Result<u64, ClientError> {
        let request_id = self.next_id;
        let frame = encode_request(&ScanRequest {
            request_id,
            venue: venue.to_string(),
            rssi: rssi.to_vec(),
        })
        .map_err(ClientError::Encode)?;
        self.stream.write_all(&frame)?;
        self.next_id += 1;
        Ok(request_id)
    }

    /// Pops one response if a complete frame has already arrived, without
    /// blocking. Returns `Ok(None)` when the socket has nothing ready.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF, [`ClientError::Wire`] on an
    /// unparseable frame, or [`ClientError::Io`].
    pub fn try_recv(&mut self) -> Result<Option<ScanResponse>, ClientError> {
        if let Some(payload) = self.frames.next_payload().map_err(ClientError::Wire)? {
            return decode_response(&payload).map(Some).map_err(ClientError::Wire);
        }
        self.stream.set_nonblocking(true)?;
        let fill = self.fill_from_socket();
        self.stream.set_nonblocking(false)?;
        let closed = match fill {
            Ok(()) => false,
            Err(ClientError::Closed) => true,
            Err(e) => return Err(e),
        };
        match self.frames.next_payload().map_err(ClientError::Wire)? {
            Some(payload) => decode_response(&payload).map(Some).map_err(ClientError::Wire),
            // EOF with no frame ready: surface the close.
            None if closed => Err(ClientError::Closed),
            None => Ok(None),
        }
    }

    /// Blocks until the next response arrives (in completion order, which
    /// for pipelined traffic is not necessarily send order).
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF, [`ClientError::Wire`] on an
    /// unparseable frame, or [`ClientError::Io`] (including read
    /// timeouts configured on the socket).
    pub fn recv(&mut self) -> Result<ScanResponse, ClientError> {
        loop {
            if let Some(payload) = self.frames.next_payload().map_err(ClientError::Wire)? {
                return decode_response(&payload).map_err(ClientError::Wire);
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.frames.push_bytes(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends one scan and blocks until **its** answer arrives (responses
    /// to other pipelined requests received meanwhile are decoded and
    /// dropped — use [`NetClient::send`]/[`NetClient::recv`] directly when
    /// pipelining).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; a server-side error code surfaces as
    /// [`ClientError::Status`].
    pub fn locate(&mut self, venue: &str, rssi: &[f32]) -> Result<WirePosition, ClientError> {
        let id = self.send(venue, rssi)?;
        loop {
            let resp = self.recv()?;
            if resp.request_id == id {
                return resp.result.map_err(ClientError::Status);
            }
        }
    }

    /// Sets the blocking-read timeout used by [`NetClient::recv`] /
    /// [`NetClient::locate`] (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Half-closes the write side, telling the server this client will
    /// send no more requests (pending responses can still be read).
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from the socket.
    pub fn finish_sending(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Drains socket bytes into the frame buffer until `WouldBlock`.
    fn fill_from_socket(&mut self) -> Result<(), ClientError> {
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.frames.push_bytes(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}
