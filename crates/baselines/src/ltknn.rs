//! LT-KNN baseline \[21\] (Montoliu et al., "A New Methodology for
//! Long-Term Maintenance of WiFi Fingerprinting Radio Maps", IPIN 2018).
//!
//! LT-KNN keeps plain KNN competitive over the long term by (a) **imputing**
//! the RSSI of removed APs with per-AP ridge regressions fitted on the
//! offline radio map, and (b) **re-fitting** the radio map every collection
//! instance using newly collected unlabeled fingerprints (pseudo-labeled by
//! the current model). The paper re-trains it at every CI/month — exactly
//! what [`Localizer::adapt`] models here.

use stone::ImageCodec;
use stone_dataset::{FingerprintDataset, Framework, Localizer, RpId, MISSING_RSSI_DBM};
use stone_radio::Point2;
use stone_tensor::{linalg, Tensor};

/// Builder for the LT-KNN baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LtKnnBuilder {
    k: usize,
    /// Ridge regularization of the imputation regressions.
    lambda: f32,
    /// Radio-map refresh rate toward pseudo-labeled new scans (0 disables
    /// map refitting, 1 replaces entries outright).
    refresh_rate: f32,
}

impl LtKnnBuilder {
    /// Creates the builder.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero, `lambda` is negative, or `refresh_rate` is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn new(k: usize, lambda: f32, refresh_rate: f32) -> Self {
        assert!(k > 0, "k must be at least 1");
        assert!(lambda >= 0.0, "lambda must be non-negative");
        assert!((0.0..=1.0).contains(&refresh_rate), "refresh rate must be in [0, 1]");
        Self { k, lambda, refresh_rate }
    }
}

impl Default for LtKnnBuilder {
    fn default() -> Self {
        Self::new(3, 1e-2, 0.2)
    }
}

impl Framework for LtKnnBuilder {
    fn name(&self) -> &str {
        "LT-KNN"
    }

    fn fit(&self, train: &FingerprintDataset, _seed: u64) -> Box<dyn Localizer> {
        Box::new(LtKnnLocalizer::fit(train, self.k, self.lambda, self.refresh_rate))
    }
}

/// The deployed LT-KNN model.
#[derive(Debug, Clone)]
pub struct LtKnnLocalizer {
    k: usize,
    lambda: f32,
    refresh_rate: f32,
    /// Normalized radio map (mutated by [`Localizer::adapt`]).
    map: Vec<Vec<f32>>,
    labels: Vec<RpId>,
    positions: Vec<Point2>,
    /// Pristine offline map used as regression training data.
    offline_map: Vec<Vec<f32>>,
    /// APs observed in the offline phase.
    trained_visible: Vec<bool>,
    /// Regression imputers for currently-removed APs:
    /// `(ap, feature_aps, weights, intercept)`.
    imputers: Vec<(usize, Vec<usize>, Vec<f32>, f32)>,
    retrain_count: usize,
}

impl LtKnnLocalizer {
    /// Builds the model from the offline dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or invalid hyperparameters (see
    /// [`LtKnnBuilder::new`]).
    #[must_use]
    pub fn fit(train: &FingerprintDataset, k: usize, lambda: f32, refresh_rate: f32) -> Self {
        assert!(k > 0, "k must be at least 1");
        assert!(!train.is_empty(), "training set must be non-empty");
        let mut map = Vec::with_capacity(train.len());
        let mut labels = Vec::with_capacity(train.len());
        let mut positions = Vec::with_capacity(train.len());
        for r in train.records() {
            let norm: Vec<f32> = r.rssi.iter().map(|&v| ImageCodec::normalize(v)).collect();
            map.push(norm);
            labels.push(r.rp);
            positions.push(train.rp_position(r.rp).expect("record RP registered"));
        }
        let trained_visible = train.ap_visibility();
        Self {
            k,
            lambda,
            refresh_rate,
            offline_map: map.clone(),
            map,
            labels,
            positions,
            trained_visible,
            imputers: Vec::new(),
            retrain_count: 0,
        }
    }

    /// How many times [`Localizer::adapt`] has re-fitted the model — the
    /// maintenance cost STONE avoids.
    #[must_use]
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// Number of APs currently imputed by regression.
    #[must_use]
    pub fn imputed_ap_count(&self) -> usize {
        self.imputers.len()
    }

    /// Fills removed-AP entries of a normalized query via the fitted
    /// regressions.
    fn impute(&self, query: &mut [f32]) {
        for (ap, feats, w, b) in &self.imputers {
            let mut v = *b;
            for (fi, wi) in feats.iter().zip(w) {
                v += query[*fi] * wi;
            }
            query[*ap] = v.clamp(0.0, 1.0);
        }
    }

    /// RP label of the single nearest (imputed) radio-map entry.
    #[must_use]
    pub fn nearest_rp(&self, rssi: &[f32]) -> RpId {
        let mut query: Vec<f32> = rssi.iter().map(|&v| ImageCodec::normalize(v)).collect();
        self.impute(&mut query);
        self.labels[self.k_nearest(&query)[0].0]
    }

    fn k_nearest(&self, query: &[f32]) -> Vec<(usize, f32)> {
        let mut d: Vec<(usize, f32)> = self
            .map
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let dist: f32 = m.iter().zip(query).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (i, dist)
            })
            .collect();
        d.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        d.truncate(self.k);
        d
    }

    fn weighted_position(&self, neigh: &[(usize, f32)]) -> Point2 {
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut ws = 0.0;
        for &(i, d) in neigh {
            let w = 1.0 / (f64::from(d) + 1e-6);
            wx += self.positions[i].x * w;
            wy += self.positions[i].y * w;
            ws += w;
        }
        Point2::new(wx / ws, wy / ws)
    }

    /// Fits one ridge regression predicting `target_ap` from `features`
    /// over the pristine offline map. Returns `None` when the system is
    /// degenerate.
    fn fit_imputer(&self, target_ap: usize, features: &[usize]) -> Option<(Vec<f32>, f32)> {
        let m = self.offline_map.len();
        let p = features.len();
        if m == 0 || p == 0 {
            return None;
        }
        // Design matrix with a trailing intercept column.
        let mut x = Tensor::zeros(vec![m, p + 1]);
        let mut y = vec![0.0f32; m];
        for (row, fp) in self.offline_map.iter().enumerate() {
            for (col, &f) in features.iter().enumerate() {
                x.set2(row, col, fp[f]);
            }
            x.set2(row, p, 1.0);
            y[row] = fp[target_ap];
        }
        let w = linalg::ridge_regression(&x, &y, self.lambda).ok()?;
        let intercept = w[p];
        Some((w[..p].to_vec(), intercept))
    }
}

impl Localizer for LtKnnLocalizer {
    fn name(&self) -> &str {
        "LT-KNN"
    }

    fn locate(&self, rssi: &[f32]) -> Point2 {
        let mut query: Vec<f32> = rssi.iter().map(|&v| ImageCodec::normalize(v)).collect();
        self.impute(&mut query);
        let neigh = self.k_nearest(&query);
        self.weighted_position(&neigh)
    }

    fn adapt(&mut self, scans: &[Vec<f32>]) {
        if scans.is_empty() {
            return;
        }
        self.retrain_count += 1;

        // 1. Which trained APs are still alive in the new collection?
        let ap_count = self.trained_visible.len();
        let mut alive = vec![false; ap_count];
        for s in scans {
            for (i, &v) in s.iter().enumerate() {
                if v > MISSING_RSSI_DBM {
                    alive[i] = true;
                }
            }
        }
        let removed: Vec<usize> =
            (0..ap_count).filter(|&i| self.trained_visible[i] && !alive[i]).collect();
        let features: Vec<usize> =
            (0..ap_count).filter(|&i| self.trained_visible[i] && alive[i]).collect();

        // 2. Re-fit the per-AP imputation regressions.
        self.imputers.clear();
        // Cap the feature set: tiny ridge systems stay well-conditioned and
        // fast. Features are chosen by correlation with the target AP.
        const MAX_FEATURES: usize = 12;
        for &ap in &removed {
            let target: Vec<f32> = self.offline_map.iter().map(|fp| fp[ap]).collect();
            let mut ranked: Vec<(usize, f32)> = features
                .iter()
                .map(|&f| {
                    let col: Vec<f32> = self.offline_map.iter().map(|fp| fp[f]).collect();
                    (f, linalg::pearson(&col, &target).abs())
                })
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite correlations"));
            let chosen: Vec<usize> =
                ranked.into_iter().take(MAX_FEATURES).map(|(f, _)| f).collect();
            if let Some((w, b)) = self.fit_imputer(ap, &chosen) {
                self.imputers.push((ap, chosen, w, b));
            }
        }

        // 3. Refresh the radio map toward the new collection: pseudo-label
        //    each scan with the current model and blend the *confident*
        //    half (smallest match distances) into their nearest map
        //    entries. Blending low-confidence matches would let the
        //    self-training loop corrupt the map once errors grow.
        if self.refresh_rate > 0.0 {
            let beta = self.refresh_rate;
            let mut matched: Vec<(usize, f32, Vec<f32>)> = scans
                .iter()
                .map(|s| {
                    let mut q: Vec<f32> = s.iter().map(|&v| ImageCodec::normalize(v)).collect();
                    self.impute(&mut q);
                    let (best, dist) = self.k_nearest(&q)[0];
                    (best, dist, q)
                })
                .collect();
            matched.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
            matched.truncate(scans.len().div_ceil(2));
            for (best, _, q) in matched {
                for (m, &v) in self.map[best].iter_mut().zip(&q) {
                    *m = (1.0 - beta) * *m + beta * v;
                }
            }
        }
    }

    fn requires_retraining(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stone_dataset::{office_suite, SuiteConfig};

    #[test]
    fn behaves_like_knn_before_any_change() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let loc = LtKnnLocalizer::fit(&suite.train, 3, 1e-2, 0.3);
        let r = &suite.train.records()[0];
        assert!(loc.locate(&r.rssi).distance(r.pos) < 3.0);
        assert_eq!(loc.imputed_ap_count(), 0);
    }

    #[test]
    fn adapt_fits_imputers_for_removed_aps() {
        let suite = office_suite(&SuiteConfig::tiny(2));
        let mut loc = LtKnnLocalizer::fit(&suite.train, 3, 1e-2, 0.0);
        // Simulate a collection where APs 0..5 (if trained-visible) vanish.
        let mut scans = suite.buckets[0].raw_scans();
        for s in &mut scans {
            for v in s.iter_mut().take(5) {
                *v = MISSING_RSSI_DBM;
            }
        }
        loc.adapt(&scans);
        let vis = suite.train.ap_visibility();
        let expected = vis.iter().take(5).filter(|&&b| b).count();
        assert_eq!(loc.imputed_ap_count(), expected);
        assert_eq!(loc.retrain_count(), 1);
        assert!(loc.requires_retraining());
    }

    #[test]
    fn imputation_improves_post_removal_accuracy() {
        let suite = office_suite(&SuiteConfig::tiny(3));
        // Post-removal bucket (CI 13): many trained APs now read -100.
        let bucket = &suite.buckets[13];
        let eval = |loc: &mut dyn Localizer| -> f64 {
            let traj = &bucket.trajectories[0];
            let preds = loc.locate_trajectory(traj);
            preds.iter().zip(&traj.fingerprints).map(|(p, f)| p.distance(f.pos)).sum::<f64>()
                / preds.len() as f64
        };
        let mut plain = LtKnnLocalizer::fit(&suite.train, 3, 1e-2, 0.0);
        let err_no_adapt = eval(&mut plain);
        let mut adapted = LtKnnLocalizer::fit(&suite.train, 3, 1e-2, 0.3);
        // The paper re-trains LT-KNN at every CI; replay that here.
        for b in suite.buckets.iter().take(14) {
            adapted.adapt(&b.raw_scans());
        }
        let err_adapt = eval(&mut adapted);
        assert!(
            err_adapt <= err_no_adapt + 0.5,
            "adaptation hurt badly: {err_adapt:.2} vs {err_no_adapt:.2}"
        );
    }

    #[test]
    fn adapt_ignores_empty_scan_sets() {
        let suite = office_suite(&SuiteConfig::tiny(4));
        let mut loc = LtKnnLocalizer::fit(&suite.train, 3, 1e-2, 0.3);
        loc.adapt(&[]);
        assert_eq!(loc.retrain_count(), 0);
    }
}
