//! KNN / LearnLoc baseline \[11\]: Euclidean matching of raw normalized
//! fingerprints.

use stone::ImageCodec;
use stone_dataset::{FingerprintDataset, Framework, Localizer, RpId};
use stone_radio::Point2;

/// Builder for the plain-KNN baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnBuilder {
    k: usize,
}

impl KnnBuilder {
    /// Creates the builder with neighbour count `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        Self { k }
    }
}

impl Default for KnnBuilder {
    fn default() -> Self {
        Self::new(3)
    }
}

impl Framework for KnnBuilder {
    fn name(&self) -> &str {
        "KNN"
    }

    fn fit(&self, train: &FingerprintDataset, _seed: u64) -> Box<dyn Localizer> {
        Box::new(KnnLocalizer::fit(train, self.k))
    }
}

/// The deployed KNN model: normalized radio map plus Euclidean search.
#[derive(Debug, Clone)]
pub struct KnnLocalizer {
    k: usize,
    map: Vec<Vec<f32>>, // normalized [0, 1] fingerprints
    labels: Vec<RpId>,
    positions: Vec<Point2>,
}

impl KnnLocalizer {
    /// Builds the radio map from the offline dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or `k == 0`.
    #[must_use]
    pub fn fit(train: &FingerprintDataset, k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        assert!(!train.is_empty(), "training set must be non-empty");
        let mut map = Vec::with_capacity(train.len());
        let mut labels = Vec::with_capacity(train.len());
        let mut positions = Vec::with_capacity(train.len());
        for r in train.records() {
            map.push(r.rssi.iter().map(|&v| ImageCodec::normalize(v)).collect());
            labels.push(r.rp);
            positions.push(train.rp_position(r.rp).expect("record RP registered"));
        }
        Self { k, map, labels, positions }
    }

    /// Number of stored radio-map entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the radio map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// RP label of the single nearest radio-map entry (the 1-NN class).
    #[must_use]
    pub fn nearest_rp(&self, rssi: &[f32]) -> RpId {
        let query: Vec<f32> = rssi.iter().map(|&v| ImageCodec::normalize(v)).collect();
        self.labels[self.k_nearest(&query)[0].0]
    }

    fn k_nearest(&self, query: &[f32]) -> Vec<(usize, f32)> {
        let mut d: Vec<(usize, f32)> = self
            .map
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let dist: f32 = m.iter().zip(query).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (i, dist)
            })
            .collect();
        d.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
        d.truncate(self.k);
        d
    }
}

impl Localizer for KnnLocalizer {
    fn name(&self) -> &str {
        "KNN"
    }

    fn locate(&self, rssi: &[f32]) -> Point2 {
        let query: Vec<f32> = rssi.iter().map(|&v| ImageCodec::normalize(v)).collect();
        let neigh = self.k_nearest(&query);
        // Inverse-distance-weighted average of neighbour positions — the
        // LearnLoc formulation.
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut ws = 0.0;
        for &(i, d) in &neigh {
            let w = 1.0 / (f64::from(d) + 1e-6);
            wx += self.positions[i].x * w;
            wy += self.positions[i].y * w;
            ws += w;
        }
        Point2::new(wx / ws, wy / ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stone_dataset::{office_suite, SuiteConfig};

    #[test]
    fn perfect_match_returns_rp_position() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let loc = KnnLocalizer::fit(&suite.train, 1);
        let r = &suite.train.records()[0];
        let p = loc.locate(&r.rssi);
        assert!(p.distance(r.pos) < 1e-6, "got {p}, expected {}", r.pos);
    }

    #[test]
    fn accurate_on_same_instance_walk() {
        let suite = office_suite(&SuiteConfig::tiny(2));
        let fw = KnnBuilder::default();
        let mut loc = fw.fit(&suite.train, 0);
        let traj = &suite.buckets[0].trajectories[0];
        let preds = loc.locate_trajectory(traj);
        let mean: f64 =
            preds.iter().zip(&traj.fingerprints).map(|(p, f)| p.distance(f.pos)).sum::<f64>()
                / preds.len() as f64;
        assert!(mean < 6.0, "CI0 mean error {mean:.2} m");
    }

    #[test]
    fn does_not_retrain() {
        let suite = office_suite(&SuiteConfig::tiny(3));
        let mut loc = KnnBuilder::default().fit(&suite.train, 0);
        assert!(!loc.requires_retraining());
        // adapt must be a no-op.
        let before = loc.locate(&suite.train.records()[0].rssi);
        loc.adapt(&suite.buckets[5].raw_scans());
        let after = loc.locate(&suite.train.records()[0].rssi);
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_training() {
        let ds = FingerprintDataset::new("empty", 4, vec![]);
        let _ = KnnLocalizer::fit(&ds, 3);
    }
}
