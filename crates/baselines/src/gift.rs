//! GIFT baseline \[9\] (Shu et al., "Gradient-Based Fingerprinting for
//! Indoor Localization and Tracking", TIE 2016).
//!
//! GIFT sidesteps absolute-RSSI instability by fingerprinting the *gradient*
//! between consecutive scans as the user moves: each gradient fingerprint is
//! a per-AP trend quantized to {-1, 0, +1}, associated with a floorplan
//! **movement vector** rather than a position. Online, consecutive scans are
//! matched against the gradient map and the user is tracked by accumulating
//! matched movement vectors from a known start (dead reckoning).
//!
//! As the paper observes (Sec. V.B/V.C), this is resilient over minutes and
//! hours but degrades badly over months: drift and AP removal corrupt
//! gradients, and dead-reckoning accumulates every matching error.

use stone::ImageCodec;
use stone_dataset::{FingerprintDataset, Framework, Localizer, Trajectory, MISSING_RSSI_DBM};
use stone_radio::Point2;

/// Builder for the GIFT baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GiftBuilder {
    /// Normalized-RSSI dead band below which a change counts as "flat".
    epsilon: f32,
}

impl GiftBuilder {
    /// Creates the builder with gradient dead band `epsilon` (normalized
    /// RSSI units; 0.03 ≈ 3 dB).
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is negative.
    #[must_use]
    pub fn new(epsilon: f32) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self { epsilon }
    }
}

impl Default for GiftBuilder {
    fn default() -> Self {
        Self::new(0.03)
    }
}

impl Framework for GiftBuilder {
    fn name(&self) -> &str {
        "GIFT"
    }

    fn fit(&self, train: &FingerprintDataset, _seed: u64) -> Box<dyn Localizer> {
        Box::new(GiftLocalizer::fit(train, self.epsilon))
    }
}

/// One gradient fingerprint: quantized per-AP trend plus the movement that
/// produced it.
#[derive(Debug, Clone)]
struct GradientEntry {
    trend: Vec<i8>,
    movement: Point2, // displacement vector, meters
    midpoint: Point2, // for the single-scan fallback
}

/// The deployed GIFT model.
#[derive(Debug, Clone)]
pub struct GiftLocalizer {
    epsilon: f32,
    entries: Vec<GradientEntry>,
    /// Map-matching correction weight: after each dead-reckoning step the
    /// estimate is pulled toward the matched edge's midpoint. The original
    /// GIFT bounds drift with map constraints and particle filtering; this
    /// is the equivalent lightweight correction.
    anchor_weight: f64,
}

impl GiftLocalizer {
    /// Builds the gradient map from the offline dataset.
    ///
    /// Training fingerprints are grouped per RP in the dataset's RP order
    /// (the survey walk order); every pair of fingerprints at *adjacent* RPs
    /// yields one gradient fingerprint per direction.
    ///
    /// # Panics
    ///
    /// Panics when the dataset has fewer than two RPs with records.
    #[must_use]
    pub fn fit(train: &FingerprintDataset, epsilon: f32) -> Self {
        // Group record indices per RP, in dataset RP order.
        let rps = train.rps();
        let mut by_rp: Vec<Vec<usize>> = vec![Vec::new(); rps.len()];
        for (i, r) in train.records().iter().enumerate() {
            by_rp[train.rp_index(r.rp).expect("registered RP")].push(i);
        }
        let occupied: Vec<usize> = (0..rps.len()).filter(|&i| !by_rp[i].is_empty()).collect();
        assert!(occupied.len() >= 2, "GIFT needs records at >= 2 RPs");

        let mut entries = Vec::new();
        for w in occupied.windows(2) {
            let (a, b) = (w[0], w[1]);
            let pa = rps[a].pos;
            let pb = rps[b].pos;
            let movement = Point2::new(pb.x - pa.x, pb.y - pa.y);
            let midpoint = pa.lerp(pb, 0.5);
            for &ia in &by_rp[a] {
                for &ib in &by_rp[b] {
                    let fa = &train.records()[ia].rssi;
                    let fb = &train.records()[ib].rssi;
                    entries.push(GradientEntry {
                        trend: quantized_gradient(fa, fb, epsilon),
                        movement,
                        midpoint,
                    });
                    entries.push(GradientEntry {
                        trend: quantized_gradient(fb, fa, epsilon),
                        movement: Point2::new(-movement.x, -movement.y),
                        midpoint,
                    });
                }
            }
        }
        Self { epsilon, entries, anchor_weight: 0.25 }
    }

    /// Number of stored gradient fingerprints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the gradient map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn best_match(&self, trend: &[i8]) -> &GradientEntry {
        self.entries
            .iter()
            .min_by_key(|e| trend_distance(&e.trend, trend))
            .expect("gradient map is non-empty by construction")
    }
}

/// Quantizes the change between two consecutive scans to {-1, 0, +1} per AP.
/// APs missing in both scans contribute 0; an AP (dis)appearing counts as a
/// strong trend.
fn quantized_gradient(from: &[f32], to: &[f32], epsilon: f32) -> Vec<i8> {
    from.iter()
        .zip(to)
        .map(|(&a, &b)| {
            let a_vis = a > MISSING_RSSI_DBM;
            let b_vis = b > MISSING_RSSI_DBM;
            match (a_vis, b_vis) {
                (false, false) => 0,
                (false, true) => 1,
                (true, false) => -1,
                (true, true) => {
                    let d = ImageCodec::normalize(b) - ImageCodec::normalize(a);
                    if d > epsilon {
                        1
                    } else if d < -epsilon {
                        -1
                    } else {
                        0
                    }
                }
            }
        })
        .collect()
}

/// Hamming-style distance between quantized trends (disagreements weighted
/// by severity: -1 vs +1 counts double).
fn trend_distance(a: &[i8], b: &[i8]) -> u32 {
    a.iter().zip(b).map(|(&x, &y)| u32::from(x.abs_diff(y))).sum()
}

impl Localizer for GiftLocalizer {
    fn name(&self) -> &str {
        "GIFT"
    }

    /// Single-scan fallback: GIFT has no absolute positioning, so a lone
    /// scan is mapped to the midpoint of the best-matching gradient edge
    /// treating the scan itself as a flat gradient. Real evaluation flows
    /// through [`Localizer::locate_trajectory`].
    fn locate(&self, rssi: &[f32]) -> Point2 {
        let flat = quantized_gradient(rssi, rssi, self.epsilon);
        self.best_match(&flat).midpoint
    }

    /// Dead-reckoned tracking from the trajectory's known start position —
    /// the movement-vector formulation of the GIFT paper.
    fn locate_trajectory(&mut self, traj: &Trajectory) -> Vec<Point2> {
        if traj.is_empty() {
            return Vec::new();
        }
        let mut pos = traj.start_pos();
        let mut out = Vec::with_capacity(traj.len());
        out.push(pos);
        let w = self.anchor_weight;
        for pair in traj.fingerprints.windows(2) {
            let trend = quantized_gradient(&pair[0].rssi, &pair[1].rssi, self.epsilon);
            let entry = self.best_match(&trend);
            // Dead-reckon, then pull toward the matched edge's location —
            // the map-matching constraint that keeps GIFT's error bounded.
            let dead = Point2::new(pos.x + entry.movement.x, pos.y + entry.movement.y);
            pos = dead.lerp(entry.midpoint, w);
            out.push(pos);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stone_dataset::{office_suite, SuiteConfig};

    #[test]
    fn gradient_quantization_rules() {
        let eps = 0.03;
        // -60 -> -50 is +0.1 normalized: up.
        assert_eq!(quantized_gradient(&[-60.0], &[-50.0], eps), vec![1]);
        // -50 -> -60: down.
        assert_eq!(quantized_gradient(&[-50.0], &[-60.0], eps), vec![-1]);
        // -60 -> -59 is +0.01: flat.
        assert_eq!(quantized_gradient(&[-60.0], &[-59.0], eps), vec![0]);
        // Appearing / disappearing APs are strong trends.
        assert_eq!(quantized_gradient(&[MISSING_RSSI_DBM], &[-70.0], eps), vec![1]);
        assert_eq!(quantized_gradient(&[-70.0], &[MISSING_RSSI_DBM], eps), vec![-1]);
        assert_eq!(quantized_gradient(&[MISSING_RSSI_DBM], &[MISSING_RSSI_DBM], eps), vec![0]);
    }

    #[test]
    fn trend_distance_weights_flips_double() {
        assert_eq!(trend_distance(&[1, 0, -1], &[1, 0, -1]), 0);
        assert_eq!(trend_distance(&[1], &[0]), 1);
        assert_eq!(trend_distance(&[1], &[-1]), 2);
    }

    #[test]
    fn builds_gradient_map_from_suite() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let gift = GiftLocalizer::fit(&suite.train, 0.03);
        // 8 RPs -> 7 adjacent pairs; 3 FPR each -> 9 pairs per edge, both
        // directions.
        assert_eq!(gift.len(), 7 * 9 * 2);
    }

    #[test]
    fn tracks_same_instance_walk_reasonably() {
        let suite = office_suite(&SuiteConfig::tiny(2));
        let mut gift = GiftBuilder::default().fit(&suite.train, 0);
        let traj = &suite.buckets[0].trajectories[0];
        let preds = gift.locate_trajectory(traj);
        assert_eq!(preds.len(), traj.len());
        // Start is seeded with ground truth.
        assert!(preds[0].distance(traj.fingerprints[0].pos) < 1e-9);
        let mean: f64 =
            preds.iter().zip(&traj.fingerprints).map(|(p, f)| p.distance(f.pos)).sum::<f64>()
                / preds.len() as f64;
        // Tiny suite has 6 m RP pitch; same-instance tracking should stay in
        // the right half of the building at least.
        assert!(mean < 20.0, "CI0 tracking error {mean:.2} m");
    }

    #[test]
    fn no_retraining_hook() {
        let suite = office_suite(&SuiteConfig::tiny(3));
        let loc = GiftBuilder::default().fit(&suite.train, 0);
        assert!(!loc.requires_retraining());
    }

    #[test]
    fn empty_trajectory_yields_empty_path() {
        let suite = office_suite(&SuiteConfig::tiny(4));
        let mut gift = GiftLocalizer::fit(&suite.train, 0.03);
        assert!(gift.locate_trajectory(&Trajectory::default()).is_empty());
    }
}
