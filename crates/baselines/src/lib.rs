//! # stone-baselines
//!
//! From-scratch implementations of the four prior frameworks the STONE paper
//! compares against (Sec. V.A.3):
//!
//! * [`KnnBuilder`] — **KNN / LearnLoc** \[11\]: lightweight non-parametric
//!   Euclidean matching of raw fingerprints; temporal-variation agnostic.
//! * [`LtKnnBuilder`] — **LT-KNN** \[21\]: KNN plus ridge-regression
//!   imputation of removed APs and per-collection-instance radio-map
//!   refitting (the strongest prior work in the paper's evaluation — but it
//!   must re-train every bucket).
//! * [`GiftBuilder`] — **GIFT** \[9\]: quantized RSSI-gradient fingerprints
//!   matched to movement vectors; a tracking approach evaluated on
//!   trajectories.
//! * [`ScnnBuilder`] — **SCNN** \[6\]: a convolutional RP classifier trained
//!   with cross-entropy; accurate on day 0, prone to overfitting the
//!   training instance.
//!
//! Plus the contrastive-loss relative discussed in the related work:
//!
//! * [`SeleBuilder`] — **SELE** \[18\]: a pairwise-contrastive Siamese
//!   embedding without STONE's augmentation/floorplan mining, requiring
//!   monthly recalibration.
//!
//! All implement [`stone_dataset::Framework`], so the experiment runner in
//! `stone-eval` treats them interchangeably with STONE.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gift;
mod knn;
mod ltknn;
mod scnn;
mod sele;

pub use gift::{GiftBuilder, GiftLocalizer};
pub use knn::{KnnBuilder, KnnLocalizer};
pub use ltknn::{LtKnnBuilder, LtKnnLocalizer};
pub use scnn::{ScnnBuilder, ScnnLocalizer};
pub use sele::{SeleBuilder, SeleLocalizer};
