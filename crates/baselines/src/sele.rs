//! SELE baseline \[18\] (Pandey et al., "SELE: RSS Based Siamese Embedding
//! Location Estimator for a Dynamic IoT Environment", IoT Journal 2021).
//!
//! SELE is the contrastive-loss relative of STONE discussed in the paper's
//! related work (Sec. II): a few-shot Siamese embedding over raw RSS vectors
//! trained with *pairwise* contrastive loss. It avoids overfitting the
//! label–sample relationship like STONE does, but it lacks STONE's long-term
//! augmentation and floorplan-aware mining — which, per the paper, leaves it
//! "highly susceptible to long-term temporal variations and removal of APs"
//! and forces monthly recalibration. That recalibration is modelled by
//! [`Localizer::adapt`]: the encoder stays frozen while the KNN reference
//! embeddings are refreshed with confidence-gated pseudo-labelled scans.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use stone::{EmbeddingKnn, ImageCodec, KnnMode};
use stone_dataset::{FingerprintDataset, Framework, Localizer, RpId};
use stone_nn::{Adam, ContrastiveLoss, Dense, L2Normalize, Optimizer, Relu, Sequential};
use stone_radio::Point2;
use stone_tensor::Tensor;

/// Training hyperparameters of the SELE baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeleBuilder {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Hidden widths of the two-layer MLP encoder.
    pub hidden: (usize, usize),
    /// Contrastive margin for dissimilar pairs.
    pub margin: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Pairs per epoch.
    pub pairs_per_epoch: usize,
    /// Pairs per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Neighbour count of the embedding KNN.
    pub knn_k: usize,
    /// Recalibration blend rate toward pseudo-labelled scans.
    pub refresh_rate: f32,
}

impl Default for SeleBuilder {
    fn default() -> Self {
        Self {
            embed_dim: 8,
            hidden: (128, 64),
            margin: 1.0,
            epochs: 10,
            pairs_per_epoch: 384,
            batch_size: 32,
            learning_rate: 1e-3,
            knn_k: 5,
            refresh_rate: 0.3,
        }
    }
}

impl SeleBuilder {
    /// A shorter schedule for unit tests.
    #[must_use]
    pub fn quick() -> Self {
        Self { epochs: 4, pairs_per_epoch: 128, ..Self::default() }
    }
}

impl Framework for SeleBuilder {
    fn name(&self) -> &str {
        "SELE"
    }

    fn fit(&self, train: &FingerprintDataset, seed: u64) -> Box<dyn Localizer> {
        Box::new(SeleLocalizer::fit(train, self, seed))
    }
}

/// The deployed SELE model.
pub struct SeleLocalizer {
    net: Sequential,
    knn: EmbeddingKnn,
    ap_count: usize,
    refresh_rate: f32,
    recalibration_count: usize,
}

impl SeleLocalizer {
    /// Trains the contrastive Siamese encoder and fits the embedding KNN.
    ///
    /// # Panics
    ///
    /// Panics when the dataset is empty or has fewer than two RPs.
    #[must_use]
    pub fn fit(train: &FingerprintDataset, cfg: &SeleBuilder, seed: u64) -> Self {
        assert!(!train.is_empty(), "training set must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let ap_count = train.ap_count();

        let mut net = Sequential::new(vec![
            Box::new(Dense::new(ap_count, cfg.hidden.0, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(cfg.hidden.0, cfg.hidden.1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(cfg.hidden.1, cfg.embed_dim, &mut rng)),
            Box::new(L2Normalize::new()),
        ]);

        // Group records per RP for pair sampling.
        let mut by_rp: Vec<Vec<usize>> = vec![Vec::new(); train.rps().len()];
        for (i, r) in train.records().iter().enumerate() {
            by_rp[train.rp_index(r.rp).expect("registered RP")].push(i);
        }
        let occupied: Vec<usize> = (0..by_rp.len()).filter(|&i| !by_rp[i].is_empty()).collect();
        assert!(occupied.len() >= 2, "SELE needs records at >= 2 RPs");

        let normalized: Vec<Vec<f32>> = train
            .records()
            .iter()
            .map(|r| r.rssi.iter().map(|&v| ImageCodec::normalize(v)).collect())
            .collect();

        let loss_fn = ContrastiveLoss::new(cfg.margin);
        let mut opt = Adam::with_lr(cfg.learning_rate);
        let steps = (cfg.pairs_per_epoch / cfg.batch_size).max(1);
        for _ in 0..cfg.epochs {
            for _ in 0..steps {
                let mut left = Vec::with_capacity(cfg.batch_size * ap_count);
                let mut right = Vec::with_capacity(cfg.batch_size * ap_count);
                let mut same = Vec::with_capacity(cfg.batch_size);
                for b in 0..cfg.batch_size {
                    let rp_a = occupied[rng.gen_range(0..occupied.len())];
                    let i = by_rp[rp_a][rng.gen_range(0..by_rp[rp_a].len())];
                    let (j, is_same) = if b % 2 == 0 {
                        // Similar pair: same RP.
                        (by_rp[rp_a][rng.gen_range(0..by_rp[rp_a].len())], true)
                    } else {
                        // Dissimilar pair: any other RP.
                        let mut rp_b = occupied[rng.gen_range(0..occupied.len())];
                        while rp_b == rp_a && occupied.len() > 1 {
                            rp_b = occupied[rng.gen_range(0..occupied.len())];
                        }
                        (by_rp[rp_b][rng.gen_range(0..by_rp[rp_b].len())], false)
                    };
                    left.extend_from_slice(&normalized[i]);
                    right.extend_from_slice(&normalized[j]);
                    same.push(is_same);
                }
                let xl = Tensor::from_vec(vec![cfg.batch_size, ap_count], left)
                    .expect("batch assembled consistently");
                let xr = Tensor::from_vec(vec![cfg.batch_size, ap_count], right)
                    .expect("batch assembled consistently");
                let (yl, cl) = net.forward_train(&xl, &mut rng);
                let (yr, cr) = net.forward_train(&xr, &mut rng);
                let (_, gl, gr) = loss_fn.loss(&yl, &yr, &same);
                let mut back = net.backward(&cl, &gl);
                back.accumulate(&net.backward(&cr, &gr));
                let flat: Vec<Tensor> = back.param_grads.into_iter().flatten().collect();
                opt.step(&mut net.params_mut(), &flat);
            }
        }

        // Fit the embedding KNN over the offline survey.
        let mut knn = EmbeddingKnn::new(cfg.knn_k, KnnMode::WeightedRegression);
        for (i, r) in train.records().iter().enumerate() {
            let x = Tensor::from_vec(vec![1, ap_count], normalized[i].clone())
                .expect("normalized record has ap_count entries");
            let e = net.predict(&x).into_vec();
            let pos = train.rp_position(r.rp).expect("registered RP");
            knn.insert(e, r.rp, pos);
        }

        Self { net, knn, ap_count, refresh_rate: cfg.refresh_rate, recalibration_count: 0 }
    }

    /// How many recalibrations have happened since deployment.
    #[must_use]
    pub fn recalibration_count(&self) -> usize {
        self.recalibration_count
    }

    fn embed(&self, rssi: &[f32]) -> Vec<f32> {
        let q: Vec<f32> = rssi.iter().map(|&v| ImageCodec::normalize(v)).collect();
        let x = Tensor::from_vec(vec![1, self.ap_count], q).expect("query has ap_count entries");
        self.net.predict(&x).into_vec()
    }
}

impl Localizer for SeleLocalizer {
    fn name(&self) -> &str {
        "SELE"
    }

    fn locate(&self, rssi: &[f32]) -> Point2 {
        self.knn.locate(&self.embed(rssi))
    }

    fn adapt(&mut self, scans: &[Vec<f32>]) {
        if scans.is_empty() || self.refresh_rate <= 0.0 {
            return;
        }
        self.recalibration_count += 1;
        // Pseudo-label each scan with the frozen encoder + current KNN and
        // insert the confident half as fresh reference embeddings.
        let mut scored: Vec<(f32, Vec<f32>, RpId, Point2)> = scans
            .iter()
            .map(|s| {
                let e = self.embed(s);
                let rp = self.knn.classify(&e);
                let pos = self.knn.locate(&e);
                // Confidence proxy: embedding distance to the closest
                // reference entry.
                let d = self.knn.nearest_distance(&e);
                (d, e, rp, pos)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        scored.truncate(scans.len().div_ceil(2));
        for (_, e, rp, pos) in scored {
            self.knn.insert(e, rp, pos);
        }
    }

    fn requires_retraining(&self) -> bool {
        true
    }
}

impl std::fmt::Debug for SeleLocalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SeleLocalizer(aps={}, knn_entries={}, recalibrations={})",
            self.ap_count,
            self.knn.len(),
            self.recalibration_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stone_dataset::{office_suite, SuiteConfig};

    #[test]
    fn trains_and_locates_within_bounds() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let sele = SeleLocalizer::fit(&suite.train, &SeleBuilder::quick(), 1);
        let r = &suite.train.records()[0];
        let p = sele.locate(&r.rssi);
        assert!(suite.env.floorplan().bounds().contains(p), "{p} out of bounds");
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let suite = office_suite(&SuiteConfig::tiny(2));
        let sele = SeleLocalizer::fit(&suite.train, &SeleBuilder::quick(), 2);
        let e = sele.embed(&suite.train.records()[0].rssi);
        let n: f32 = e.iter().map(|&v| v * v).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-4);
    }

    #[test]
    fn recalibration_grows_reference_set() {
        let suite = office_suite(&SuiteConfig::tiny(3));
        let mut sele = SeleLocalizer::fit(&suite.train, &SeleBuilder::quick(), 3);
        let before = sele.knn.len();
        sele.adapt(&suite.buckets[4].raw_scans());
        assert!(sele.knn.len() > before);
        assert_eq!(sele.recalibration_count(), 1);
        assert!(sele.requires_retraining());
    }

    #[test]
    fn framework_interface() {
        let suite = office_suite(&SuiteConfig::tiny(4));
        let fw = SeleBuilder::quick();
        assert_eq!(Framework::name(&fw), "SELE");
        let mut loc = fw.fit(&suite.train, 4);
        let out = loc.locate_trajectory(&suite.buckets[0].trajectories[0]);
        assert_eq!(out.len(), suite.buckets[0].trajectories[0].len());
    }
}
