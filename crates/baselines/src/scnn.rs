//! SCNN baseline \[6\] (Tiku & Pasricha, "Overcoming Security
//! Vulnerabilities in Deep Learning-Based Indoor Localization Frameworks on
//! Mobile Devices", TECS 2020).
//!
//! SCNN is a convolutional RP *classifier* over fingerprint images, trained
//! with cross-entropy. It is built to withstand high RSSI variability (AP
//! spoofing) but — like any sample→label classifier trained on one
//! collection instance — it overfits the offline fingerprints and degrades
//! sharply under long-term temporal variation (the paper's Figs. 5/6).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use stone::ImageCodec;
use stone_dataset::{FingerprintDataset, Framework, Localizer, RpId};
use stone_nn::{
    Adam, Conv2d, CrossEntropyLoss, Dense, Dropout, Flatten, Optimizer, Relu, Sequential,
};
use stone_radio::Point2;
use stone_tensor::{argmax, Tensor};

/// Training hyperparameters of the SCNN baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScnnBuilder {
    /// Filters in the first convolution.
    pub conv1_filters: usize,
    /// Filters in the second convolution.
    pub conv2_filters: usize,
    /// Units of the fully-connected layer.
    pub fc_units: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Dropout probability.
    pub dropout: f32,
}

impl Default for ScnnBuilder {
    fn default() -> Self {
        Self {
            conv1_filters: 32,
            conv2_filters: 64,
            fc_units: 128,
            epochs: 20,
            batch_size: 32,
            learning_rate: 1e-3,
            dropout: 0.2,
        }
    }
}

impl ScnnBuilder {
    /// A shorter training schedule for unit tests.
    #[must_use]
    pub fn quick() -> Self {
        Self { epochs: 8, ..Self::default() }
    }
}

impl Framework for ScnnBuilder {
    fn name(&self) -> &str {
        "SCNN"
    }

    fn fit(&self, train: &FingerprintDataset, seed: u64) -> Box<dyn Localizer> {
        Box::new(ScnnLocalizer::fit(train, self, seed))
    }
}

/// The deployed SCNN classifier.
pub struct ScnnLocalizer {
    net: Sequential,
    codec: ImageCodec,
    /// RP (label, position) per dense class index.
    classes: Vec<(RpId, Point2)>,
    final_train_accuracy: f32,
}

impl ScnnLocalizer {
    /// Trains the classifier on the offline dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or an AP universe too small for the
    /// convolutional trunk.
    #[must_use]
    pub fn fit(train: &FingerprintDataset, cfg: &ScnnBuilder, seed: u64) -> Self {
        assert!(!train.is_empty(), "training set must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let codec = ImageCodec::new(train.ap_count());
        let side = codec.side();
        assert!(side >= 3, "AP universe too small for two 2x2 convolutions");

        // Dense class set: only RPs that actually have records.
        let mut classes: Vec<(RpId, Point2)> = Vec::new();
        let mut class_of_rp = vec![usize::MAX; train.rps().len()];
        for r in train.records() {
            let idx = train.rp_index(r.rp).expect("registered RP");
            if class_of_rp[idx] == usize::MAX {
                class_of_rp[idx] = classes.len();
                classes.push((r.rp, train.rp_position(r.rp).expect("registered RP")));
            }
        }
        let n_classes = classes.len();

        let conv_out = side - 2;
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, cfg.conv1_filters, 2, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(cfg.dropout)),
            Box::new(Conv2d::new(cfg.conv1_filters, cfg.conv2_filters, 2, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(cfg.conv2_filters * conv_out * conv_out, cfg.fc_units, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(cfg.fc_units, n_classes, &mut rng)),
        ]);

        let images: Vec<Vec<f32>> = train.records().iter().map(|r| codec.encode(&r.rssi)).collect();
        let labels: Vec<usize> = train
            .records()
            .iter()
            .map(|r| class_of_rp[train.rp_index(r.rp).expect("registered RP")])
            .collect();

        let ce = CrossEntropyLoss::new();
        let mut opt = Adam::with_lr(cfg.learning_rate);
        let mut order: Vec<usize> = (0..images.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                let batch_imgs: Vec<Vec<f32>> = chunk.iter().map(|&i| images[i].clone()).collect();
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                let x = codec.batch_to_tensor(&batch_imgs);
                let (logits, caches) = net.forward_train(&x, &mut rng);
                let (_, grad) = ce.loss(&logits, &batch_labels);
                let back = net.backward(&caches, &grad);
                let flat: Vec<Tensor> = back.param_grads.into_iter().flatten().collect();
                opt.step(&mut net.params_mut(), &flat);
            }
        }

        let x_all = codec.batch_to_tensor(&images);
        let final_train_accuracy = ce.accuracy(&net.predict(&x_all), &labels);

        Self { net, codec, classes, final_train_accuracy }
    }

    /// Training-set accuracy after the final epoch (overfitting indicator).
    #[must_use]
    pub fn train_accuracy(&self) -> f32 {
        self.final_train_accuracy
    }

    /// Number of RP classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

impl Localizer for ScnnLocalizer {
    fn name(&self) -> &str {
        "SCNN"
    }

    fn locate(&self, rssi: &[f32]) -> Point2 {
        let x = self.codec.encode_batch(&[rssi]);
        let logits = self.net.predict(&x);
        self.classes[argmax(logits.row(0))].1
    }
}

impl std::fmt::Debug for ScnnLocalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ScnnLocalizer(classes={}, train_acc={:.2})",
            self.classes.len(),
            self.final_train_accuracy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stone_dataset::{office_suite, SuiteConfig};

    #[test]
    fn overfits_training_instance() {
        let suite = office_suite(&SuiteConfig::tiny(1));
        let scnn = ScnnLocalizer::fit(&suite.train, &ScnnBuilder::quick(), 1);
        assert!(
            scnn.train_accuracy() > 0.8,
            "SCNN failed to fit its own training set: {}",
            scnn.train_accuracy()
        );
        assert_eq!(scnn.class_count(), suite.train.rps().len());
    }

    #[test]
    fn locate_returns_a_class_position() {
        let suite = office_suite(&SuiteConfig::tiny(2));
        let scnn = ScnnLocalizer::fit(&suite.train, &ScnnBuilder::quick(), 2);
        let r = &suite.train.records()[0];
        let p = scnn.locate(&r.rssi);
        assert!(suite.train.rps().iter().any(|rp| rp.pos == p));
    }

    #[test]
    fn framework_interface() {
        let suite = office_suite(&SuiteConfig::tiny(3));
        let fw = ScnnBuilder::quick();
        assert_eq!(Framework::name(&fw), "SCNN");
        let loc = fw.fit(&suite.train, 3);
        assert!(!loc.requires_retraining());
    }

    #[test]
    fn deterministic_per_seed() {
        let suite = office_suite(&SuiteConfig::tiny(4));
        let a = ScnnLocalizer::fit(&suite.train, &ScnnBuilder::quick(), 7);
        let b = ScnnLocalizer::fit(&suite.train, &ScnnBuilder::quick(), 7);
        let q = &suite.buckets[4].trajectories[0].fingerprints[0].rssi;
        assert_eq!(a.locate(q), b.locate(q));
    }
}
