//! # proptest (workspace shim)
//!
//! A minimal stand-in for the `proptest` crate providing the subset this
//! workspace's property tests use. The build environment has no access to
//! crates.io, so the workspace vendors this shim as a path dependency under
//! the `proptest` package name (see the repo `README.md`, "Vendored
//! dependency shims").
//!
//! Differences from upstream:
//!
//! * inputs are sampled from a per-test deterministic RNG (seeded from the
//!   test path), so runs are exactly reproducible — there is no persistence
//!   file and no environment-variable seeding;
//! * **no shrinking**: a failing case reports the case number and message
//!   but does not minimize the input;
//! * only the strategies the workspace uses exist: numeric ranges,
//!   [`strategy::any`], [`strategy::Just`], [`collection::vec()`] and
//!   [`strategy::Strategy::prop_map`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s of exactly `size` elements drawn from
    /// `element`. (Upstream accepts a size *range*; the workspace only
    /// ever passes an exact length.)
    pub fn vec<S: Strategy>(element: S, size: usize) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.size).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Alias namespace kept for source compatibility (`prop::num`, …).
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (without panicking the whole harness) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `left != right`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut runner_rng = $crate::test_runner::rng_for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut runner_rng,
                        );
                    )*
                    let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("test case #{case} of {}: {message}", config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}
