//! Value-generation strategies (sampling only — no shrinking).

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange, Standard};
use std::ops::{Range, RangeInclusive};

/// A source of random values of an associated type.
///
/// Unlike upstream proptest, a strategy here is just a sampler: it draws a
/// fresh value per test case and performs no shrinking on failure.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: Copy> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Copy> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields a clone of the given value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy over the full domain of `T`, mirroring `proptest::arbitrary`.
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}
