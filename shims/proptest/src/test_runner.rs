//! Test-runner configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration. Only the knobs the workspace uses
/// exist; everything else from upstream is omitted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies. Deterministic: seeded from the test path
/// and case number, so failures reproduce without a persistence file.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one test case.
#[must_use]
pub fn rng_for_case(test_path: &str, case: u32) -> TestRng {
    StdRng::seed_from_u64(fnv1a(test_path) ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
