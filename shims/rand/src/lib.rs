//! # rand (workspace shim)
//!
//! A minimal, dependency-free stand-in for the `rand` crate, providing
//! exactly the API surface this workspace uses. The build environment has no
//! access to crates.io, so the workspace vendors this shim as a path
//! dependency under the `rand` package name (see the repo `README.md`,
//! "Vendored dependency shims").
//!
//! Provided surface:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (the same construction `rand` uses for
//!   `SeedableRng::seed_from_u64`, though the output stream differs from
//!   upstream `StdRng`, which is ChaCha-based);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive ranges over
//!   the integer and float types the workspace samples), [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//!   (Fisher–Yates).
//!
//! Everything is reproducible: the same seed always yields the same stream
//! on every platform, which is what the STONE reproduction actually needs
//! from its RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the generator's raw stream,
/// i.e. the `Standard` distribution of upstream `rand`.
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce_u64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

/// Maps a uniform `u64` onto `0..span` (Lemire's multiply-shift reduction;
/// the bias is negligible for the spans this workspace samples).
fn reduce_u64(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `rand`'s ChaCha-based `StdRng` this is not
    /// cryptographically secure, which is irrelevant for simulation use.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Frequently imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&x));
            let y: f64 = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&y));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i: usize = rng.gen_range(0..5);
            seen[i] = true;
            let j: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
