//! Load generator for the serving stack, in two acts.
//!
//! **Act 1 (in-process baseline):** N closed-loop client threads fire
//! single-scan queries straight at a [`LocalizationServer`], once with
//! batching disabled (`max_batch = 1`), once with coalescing on — the
//! pair of numbers behind the serving table in `docs/PERFORMANCE.md` (the
//! coalesced pass also hot-swaps a retrained model mid-run to show warm
//! reload under load) — and once more with **stage-span tracing enabled**:
//! the traced pass prints a per-stage latency-attribution table (queue
//! wait → collect → snapshot → infer → write-back), checks it against the
//! server's end-to-end histogram, and its wall-time delta vs the untraced
//! coalesced pass is the measured tracing overhead.
//!
//! **Act 2 (fleet over TCP):** the same registry goes behind a
//! [`NetServer`] on loopback, and a fleet of `LOADGEN_VENUES ×
//! LOADGEN_FLEET_CLIENTS` synthetic phones hammers it with **open-loop
//! Poisson arrivals** (each client keeps scanning on its own clock, however
//! far behind the server falls) through a **device-heterogeneity mix** of
//! `stone-radio` measurement models (chipset offsets, detection
//! thresholds, integer quantization). Reported per venue: throughput,
//! p50/p99 wire latency, shed and timeout counts — backpressure is supposed
//! to be visible here, not a panic. Requests carry their trace ids on the
//! v3 wire, so the fleet pass ends with another per-stage table, plus an
//! **admin stats fetch over TCP** whose exposition text must parse
//! strictly and whose span ledger must balance (opened == closed) — the
//! CI smoke contract.
//!
//! Run with: `cargo run --release --example loadgen`
//!
//! Knobs (environment): `LOADGEN_CLIENTS` / `LOADGEN_REQUESTS` for act 1;
//! `LOADGEN_VENUES`, `LOADGEN_FLEET_CLIENTS` (per venue), `LOADGEN_RATE`
//! (per-client Hz), `LOADGEN_SECONDS`, `LOADGEN_ADDR` for act 2;
//! `LOADGEN_DEADLINE_MS` (per-request deadline budget on the wire, 0 =
//! none) and `LOADGEN_RETRIES` (re-sends a shed request up to N times —
//! the `retried` column and the reported retry amplification make a
//! retry storm visible instead of silent); `LOADGEN_TRACE=0` turns
//! tracing off for the fleet act (the act-1 traced pass always traces);
//! `STONE_THREADS` for the kernel thread budget. With `STONE_CHAOS` set (see `stone_serve::ChaosConfig`)
//! the spawned act-2 server injects faults, turning the fleet run into a
//! chaos smoke: failed requests must show up in the `expired` / `error`
//! columns, never as hangs.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stone_repro::dataset::{office_suite, MISSING_RSSI_DBM};
use stone_repro::net::{codec::fmt_latency, ClientError, NetClient, NetServer, WireStatus};
use stone_repro::obs::{
    mint_trace_id, parse_exposition, set_tracing, span_snapshot, Sample, SpanRecord, Stage,
};
use stone_repro::prelude::*;
use stone_repro::radio::DeviceModel;
use stone_repro::serve::StatsSnapshot;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0.0).unwrap_or(default)
}

// ---------------------------------------------------------------- act 1 --

struct PassResult {
    label: &'static str,
    wall: Duration,
    stats: StatsSnapshot,
    answered: usize,
}

/// The traffic pattern shared by both in-process passes: which venues and
/// scans the closed-loop clients cycle through, and how many of each.
struct Workload<'a> {
    venues: &'a [String],
    scans: &'a [Vec<f32>],
    clients: usize,
    requests: usize,
}

/// One load pass: `clients` closed-loop threads, `requests` queries each,
/// round-robin over the venues. Returns wall time and the server's stats.
fn run_pass(
    label: &'static str,
    registry: &Arc<ModelRegistry>,
    cfg: ServerConfig,
    load: &Workload<'_>,
    swap: Option<StoneLocalizer>,
) -> PassResult {
    let mut server = LocalizationServer::start(Arc::clone(registry), cfg);
    let start = Instant::now();
    let answered: usize = std::thread::scope(|s| {
        let workers: Vec<_> = (0..load.clients)
            .map(|c| {
                let handle = server.handle();
                s.spawn(move || {
                    let mut ok = 0;
                    for r in 0..load.requests {
                        let venue = &load.venues[(c + r) % load.venues.len()];
                        let scan = &load.scans[(c * load.requests + r) % load.scans.len()];
                        if handle.locate(venue, scan).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        // Warm reload mid-run: publish a retrained model for every venue
        // while the clients are hammering the queue.
        if let Some(model) = swap {
            let blob = model.save();
            for venue in load.venues {
                registry.publish_bytes(venue, &blob).expect("retrained model publishes from bytes");
            }
        }
        workers.into_iter().map(|w| w.join().expect("client thread")).sum()
    });
    let wall = start.elapsed();
    let stats = server.stats();
    server.shutdown();
    PassResult { label, wall, stats, answered }
}

// --------------------------------------------------------------- tracing --

/// Per-stage duration samples over the complete (all-five-stage) traces
/// whose ids fall strictly inside a minted-id bracket, plus their
/// five-stage sums — the end-to-end latency each trace attributes.
struct StageBreakdown {
    traces: usize,
    /// Sorted µs samples per stage, indexed by `Stage as usize`.
    by_stage: [Vec<u64>; 5],
    /// Sorted five-stage sums, µs.
    e2e: Vec<u64>,
}

fn stage_breakdown(low: u64, high: u64) -> StageBreakdown {
    let mut traces: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    for rec in span_snapshot() {
        if rec.trace_id > low && rec.trace_id < high {
            traces.entry(rec.trace_id).or_default().push(rec);
        }
    }
    let mut by_stage: [Vec<u64>; 5] = Default::default();
    let mut e2e = Vec::new();
    for spans in traces.values() {
        // Only complete traces attribute: a request whose spans were
        // partially overwritten by the ring wrap would skew the shares.
        let mut durs = [0u64; 5];
        let mut seen = [false; 5];
        for s in spans {
            seen[s.stage as usize] = true;
            durs[s.stage as usize] = s.dur_us;
        }
        if spans.len() != 5 || seen != [true; 5] {
            continue;
        }
        for (samples, dur) in by_stage.iter_mut().zip(durs) {
            samples.push(dur);
        }
        e2e.push(durs.iter().sum());
    }
    for samples in &mut by_stage {
        samples.sort_unstable();
    }
    e2e.sort_unstable();
    StageBreakdown { traces: e2e.len(), by_stage, e2e }
}

/// Nearest-rank percentile of a sorted µs sample, as a `Duration`.
fn pct_us(sorted: &[u64], p: f64) -> Option<Duration> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Some(Duration::from_micros(sorted[idx]))
}

fn mean_us(sorted: &[u64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
}

/// The per-stage attribution table: where a request's latency went. The
/// five shares sum to 100% by the contiguity contract (stage k+1 starts
/// where stage k ended), so "e2e (sum)" *is* the end-to-end latency.
fn print_stage_table(label: &str, b: &StageBreakdown) {
    println!("per-stage latency attribution ({label}; {} complete traces):", b.traces);
    println!("{:<12} {:>9} {:>9} {:>9} {:>7}", "stage", "mean", "p50", "p99", "share");
    let e2e_mean = mean_us(&b.e2e);
    for stage in Stage::ALL {
        let samples = &b.by_stage[stage as usize];
        let m = mean_us(samples);
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>6.1}%",
            stage.name(),
            fmt_latency(Some(Duration::from_secs_f64(m / 1e6))),
            fmt_latency(pct_us(samples, 0.50)),
            fmt_latency(pct_us(samples, 0.99)),
            if e2e_mean > 0.0 { 100.0 * m / e2e_mean } else { 0.0 },
        );
    }
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>6.0}%",
        "e2e (sum)",
        fmt_latency(Some(Duration::from_secs_f64(e2e_mean / 1e6))),
        fmt_latency(pct_us(&b.e2e, 0.50)),
        fmt_latency(pct_us(&b.e2e, 0.99)),
        100.0,
    );
}

/// The aggregate (label-free) sample named `name`, or panic — the admin
/// smoke treats a missing series as a broken telemetry surface.
fn aggregate<'a>(samples: &'a [Sample], name: &str) -> &'a Sample {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .unwrap_or_else(|| panic!("admin exposition misses {name}"))
}

// ---------------------------------------------------------------- act 2 --

/// The fleet's device-heterogeneity mix: clients cycle through these, so a
/// venue's traffic blends ideal captures with offset, thresholded and
/// quantized chipsets (the PortLoc/SHERPA concern, live on the wire).
fn device_mix() -> Vec<(&'static str, DeviceModel)> {
    vec![
        ("lg-v20", DeviceModel::lg_v20()),
        ("ideal", DeviceModel::ideal()),
        ("lg-v20 −6 dB", DeviceModel { offset_db: -6.0, ..DeviceModel::lg_v20() }),
        ("lg-v20 +3 dB", DeviceModel { offset_db: 3.0, ..DeviceModel::lg_v20() }),
    ]
}

/// Re-measures a survey scan through a device model: visible APs pass
/// through `observe` (offset, threshold, quantization), missing APs stay
/// missing.
fn through_device(rssi: &[f32], dev: &DeviceModel) -> Vec<f32> {
    rssi.iter()
        .map(|&v| {
            if v > MISSING_RSSI_DBM {
                dev.observe(f64::from(v)).map_or(MISSING_RSSI_DBM, |o| o as f32)
            } else {
                v
            }
        })
        .collect()
}

/// What one synthetic phone saw: counters plus the latency sample of its
/// successful queries.
#[derive(Default)]
struct ClientReport {
    sent: u64,
    ok: u64,
    shed: u64,
    expired: u64,
    retried: u64,
    other_errors: u64,
    timeouts: u64,
    latencies: Vec<Duration>,
}

impl ClientReport {
    fn absorb(&mut self, other: ClientReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.shed += other.shed;
        self.expired += other.expired;
        self.retried += other.retried;
        self.other_errors += other.other_errors;
        self.timeouts += other.timeouts;
        self.latencies.extend(other.latencies);
    }

    fn percentile(&mut self, p: f64) -> Option<Duration> {
        if self.latencies.is_empty() {
            return None;
        }
        self.latencies.sort_unstable();
        let idx = ((self.latencies.len() as f64 - 1.0) * p).round() as usize;
        Some(self.latencies[idx])
    }
}

/// One request still waiting for its answer: when it left, which scan it
/// carried (so a shed can be re-sent), and how many sends it has had.
struct Pending {
    sent_at: Instant,
    scan_idx: usize,
    attempts: u32,
}

/// Classifies one response. A `Shed` with retries left is *not* counted
/// yet — the caller re-sends it and the final outcome is what lands in the
/// report; everything else settles immediately.
fn absorb_response(
    resp: &stone_repro::net::ScanResponse,
    in_flight: &mut HashMap<u64, Pending>,
    report: &mut ClientReport,
    max_retries: u32,
) -> Option<Pending> {
    let pending = in_flight.remove(&resp.request_id)?;
    match resp.result {
        Ok(_) => {
            report.ok += 1;
            report.latencies.push(pending.sent_at.elapsed());
        }
        Err(WireStatus::Shed) if pending.attempts <= max_retries => return Some(pending),
        Err(WireStatus::Shed) => report.shed += 1,
        // A blown deadline budget is terminal by design: the answer is
        // worthless now, so re-sending it would only amplify the overload
        // that expired it.
        Err(WireStatus::DeadlineExceeded) => report.expired += 1,
        Err(_) => report.other_errors += 1,
    }
    None
}

/// One synthetic phone: open-loop Poisson arrivals at `rate_hz` until the
/// run deadline, responses drained opportunistically and matched by id.
/// Open loop means the schedule does not wait for answers — when the
/// server falls behind, requests pile up in flight (and get shed), exactly
/// like a real fleet. Each request carries `deadline_us` on the wire (0 =
/// no budget), and a shed answer is re-sent up to `max_retries` times —
/// both the PR 9 resilience knobs, observable per venue.
#[allow(clippy::too_many_arguments)]
fn fleet_client(
    addr: SocketAddr,
    venue: &str,
    scans: &[Vec<f32>],
    rate_hz: f64,
    deadline: Instant,
    seed: u64,
    deadline_us: u32,
    max_retries: u32,
) -> ClientReport {
    let mut report = ClientReport::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let Ok(mut client) = NetClient::connect(addr) else {
        report.other_errors += 1;
        return report;
    };
    let mut in_flight: HashMap<u64, Pending> = HashMap::new();

    let mut next_send = Instant::now();
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if now >= next_send {
            let scan_idx = rng.gen_range(0..scans.len());
            match client.send_deadline(venue, &scans[scan_idx], deadline_us) {
                Ok(id) => {
                    in_flight
                        .insert(id, Pending { sent_at: Instant::now(), scan_idx, attempts: 1 });
                    report.sent += 1;
                }
                Err(_) => break, // server gone: report what we have
            }
            // Poisson arrivals: exponential gaps. The schedule is absolute
            // (`next_send += gap`), so a stalled socket bursts to catch up
            // instead of silently lowering the offered rate.
            let u: f64 = rng.gen();
            next_send += Duration::from_secs_f64(-(1.0 - u).ln() / rate_hz);
            continue;
        }
        // Until the next arrival is due, wait *on the socket* rather than
        // spin-polling: a blocking read bounded by the idle gap records
        // answers the moment they land and burns no CPU the server needs.
        let idle = next_send.min(deadline).saturating_duration_since(now);
        if idle.is_zero() {
            continue;
        }
        if in_flight.is_empty() {
            std::thread::sleep(idle);
        } else {
            let _ = client.set_read_timeout(Some(idle));
            match client.recv() {
                Ok(resp) => {
                    if let Some(p) =
                        absorb_response(&resp, &mut in_flight, &mut report, max_retries)
                    {
                        // Shed with retries left: re-send the same scan
                        // under a fresh id. The latency clock keeps running
                        // from the *first* send — a retried success paid
                        // for both trips.
                        match client.send_deadline(venue, &scans[p.scan_idx], deadline_us) {
                            Ok(id) => {
                                report.retried += 1;
                                in_flight.insert(id, Pending { attempts: p.attempts + 1, ..p });
                            }
                            Err(_) => {
                                report.shed += 1; // settle it before bailing
                                break;
                            }
                        }
                    }
                }
                Err(ClientError::Io(e))
                    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => break,
            }
        }
    }

    // Grace drain: the run is over, but in-flight requests deserve their
    // answers. No re-sends past this point (retries of 0): whatever is
    // still shed settles as shed, and whatever stays unanswered when the
    // grace expires (or the server closes) is a timeout.
    let _ = client.finish_sending();
    let _ = client.set_read_timeout(Some(Duration::from_secs(5)));
    while !in_flight.is_empty() {
        match client.recv() {
            Ok(resp) => {
                let _ = absorb_response(&resp, &mut in_flight, &mut report, 0);
            }
            // Closed, read timeout, or wire error: everything left is a
            // timeout from this phone's point of view.
            Err(_) => break,
        }
    }
    report.timeouts = in_flight.len() as u64;
    report
}

// ------------------------------------------------------------------------

fn main() {
    let clients = env_usize("LOADGEN_CLIENTS", 8);
    let requests = env_usize("LOADGEN_REQUESTS", 64);
    let n_venues = env_usize("LOADGEN_VENUES", 1);
    let fleet_clients = env_usize("LOADGEN_FLEET_CLIENTS", 8);
    let rate_hz = env_f64("LOADGEN_RATE", 600.0);
    let seconds = env_f64("LOADGEN_SECONDS", 2.0);
    // Resilience knobs (0 = off): a wire deadline budget per request, and
    // how many times a shed request is re-sent.
    let deadline_ms: u32 =
        std::env::var("LOADGEN_DEADLINE_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    let deadline_us = deadline_ms.saturating_mul(1_000);
    let max_retries: u32 =
        std::env::var("LOADGEN_RETRIES").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    // Set: act 2 drives an already-running server (e.g. `examples/netserve`)
    // at that address, which must serve the same `venue-NN` names. Unset:
    // act 2 spawns its own server on an ephemeral loopback port.
    let remote_addr = std::env::var("LOADGEN_ADDR").ok();

    // A moderately sized deployment: the full office RP path with a short
    // survey and training schedule (serving cost does not depend on how
    // long the encoder trained — only on its architecture and the enrolled
    // reference set).
    let suite = office_suite(&SuiteConfig::new(7).with_train_fpr(3));
    let builder = StoneBuilder::from_config(StoneConfig {
        trainer: stone_repro::core::TrainerConfig {
            epochs: 2,
            triplets_per_epoch: 64,
            batch_size: 32,
            ..stone_repro::core::TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    });
    println!("loadgen: training the deployment model...");
    let model = builder.fit(&suite.train, 7);
    let retrained = builder.fit(&suite.train, 8);
    let blob = model.save();

    // Every venue serves the same blob (the same path a cross-process
    // retrainer uses): what varies per venue is only its traffic.
    let venues: Vec<String> = (0..n_venues).map(|v| format!("venue-{v:02}")).collect();
    let registry = Arc::new(ModelRegistry::new());
    for venue in &venues {
        registry.publish_bytes(venue, &blob).expect("model publishes from bytes");
    }
    let scans: Vec<Vec<f32>> = suite.buckets.iter().flat_map(|b| b.raw_scans()).collect();
    println!(
        "loadgen: act 1: {} closed-loop clients × {} requests over {} venue(s) \
         ({} refs, {} B model blob, STONE_THREADS={})",
        clients,
        requests,
        venues.len(),
        model.knn().len(),
        blob.len(),
        stone_repro::par::max_threads(),
    );

    let load = Workload { venues: &venues, scans: &scans, clients, requests };
    let uncoalesced = run_pass(
        "batch-1",
        &registry,
        ServerConfig { max_batch: 1, ..ServerConfig::default() },
        &load,
        None,
    );
    let coalesced = run_pass(
        "coalesced",
        &registry,
        ServerConfig { max_batch: 64, ..ServerConfig::default() },
        &load,
        Some(retrained),
    );
    // The traced pass: same coalesced config, stage spans on. Its wall
    // delta vs the untraced coalesced pass is the measured tracing
    // overhead (docs/PERFORMANCE.md's tracing-overhead row).
    set_tracing(true);
    let act1_low = mint_trace_id();
    let traced = run_pass(
        "traced",
        &registry,
        ServerConfig { max_batch: 64, ..ServerConfig::default() },
        &load,
        None,
    );
    let act1_high = mint_trace_id();

    let total = clients * requests;
    println!();
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>11} {:>10}",
        "mode", "total", "req/s", "p50", "p99", "mean batch", "batches>1"
    );
    for pass in [&uncoalesced, &coalesced, &traced] {
        assert_eq!(pass.answered, total, "{}: dropped queries", pass.label);
        println!(
            "{:<11} {:>9.2?} {:>9.0} {:>9} {:>9} {:>11.2} {:>10}",
            pass.label,
            pass.wall,
            total as f64 / pass.wall.as_secs_f64(),
            fmt_latency(pass.stats.p50()),
            fmt_latency(pass.stats.p99()),
            pass.stats.mean_batch_size(),
            pass.stats.coalesced_batches(),
        );
    }
    let inproc_rps = total as f64 / coalesced.wall.as_secs_f64();
    println!(
        "\ncoalescing sped total wall time up {:.2}x; tracing overhead on the \
         coalesced pass: {:+.1}%\n",
        uncoalesced.wall.as_secs_f64() / coalesced.wall.as_secs_f64(),
        100.0 * (traced.wall.as_secs_f64() / coalesced.wall.as_secs_f64() - 1.0),
    );

    // Attribution: every answered request of the traced pass left a
    // complete five-stage trace, and the five durations sum to the
    // end-to-end latency the server's histogram measured.
    let act1_spans = stage_breakdown(act1_low, act1_high);
    if total * 5 <= stone_repro::obs::trace::SPAN_RING_CAPACITY {
        assert_eq!(act1_spans.traces, total, "every traced request left a complete trace");
    }
    print_stage_table("act 1 traced pass", &act1_spans);
    let span_p50 = pct_us(&act1_spans.e2e, 0.50).expect("traced pass recorded spans");
    let hist_p50 = traced.stats.p50().expect("traced pass populated the latency histogram");
    let slack = Duration::from_micros(200);
    assert!(
        span_p50 <= hist_p50 * 2 + slack && hist_p50 <= span_p50 * 2 + slack,
        "stage-sum p50 {span_p50:?} inconsistent with histogram p50 {hist_p50:?}"
    );
    println!(
        "stage sums agree with the e2e histogram: span p50 {} vs histogram p50 {}\n",
        fmt_latency(Some(span_p50)),
        fmt_latency(Some(hist_p50)),
    );

    // Act 2: the same registry behind the TCP front-end, under an open-loop
    // fleet. Offered load: venues × clients × rate, regardless of how fast
    // the server answers. Tracing stays on unless LOADGEN_TRACE=0 — the
    // clients mint trace ids that ride the v3 wire into the server's spans.
    let fleet_tracing = std::env::var("LOADGEN_TRACE").map_or(true, |v| v != "0");
    set_tracing(fleet_tracing);
    let act2_low = mint_trace_id();
    let mix = device_mix();
    let server = match &remote_addr {
        Some(_) => None,
        None => Some(
            NetServer::start(
                Arc::clone(&registry),
                "127.0.0.1:0",
                ServerConfig { max_batch: 64, ..ServerConfig::default() },
            )
            .expect("bind loadgen address"),
        ),
    };
    let server_addr: SocketAddr = match (&server, &remote_addr) {
        (Some(s), _) => s.local_addr(),
        (None, Some(a)) => a
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .expect("LOADGEN_ADDR resolves to a socket address"),
        (None, None) => unreachable!("no server and no remote address"),
    };
    println!(
        "loadgen: act 2: fleet of {n_venues} venue(s) × {fleet_clients} phones at \
         {rate_hz:.0} Hz each for {seconds:.1}s against {server_addr} \
         (offered ≈ {:.0} req/s, deadline {}, shed retries {max_retries}, device mix: {})",
        n_venues as f64 * fleet_clients as f64 * rate_hz,
        if deadline_ms == 0 { "off".to_string() } else { format!("{deadline_ms} ms") },
        mix.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", "),
    );

    let fleet_start = Instant::now();
    let deadline = fleet_start + Duration::from_secs_f64(seconds);
    let mut per_venue: Vec<(String, ClientReport)> = std::thread::scope(|s| {
        let phones: Vec<_> = venues
            .iter()
            .enumerate()
            .flat_map(|(v, venue)| (0..fleet_clients).map(move |c| (v, venue, c)))
            .map(|(v, venue, c)| {
                let (_, device) = mix[(v * fleet_clients + c) % mix.len()];
                // Each phone re-measures the survey scans through its own
                // chipset once, up front — the per-request work is pure
                // traffic.
                let phone_scans: Vec<Vec<f32>> =
                    scans.iter().map(|r| through_device(r, &device)).collect();
                s.spawn(move || {
                    let seed = ((v as u64) << 32) | c as u64;
                    let report = fleet_client(
                        server_addr,
                        venue,
                        &phone_scans,
                        rate_hz,
                        deadline,
                        seed,
                        deadline_us,
                        max_retries,
                    );
                    (v, report)
                })
            })
            .collect();
        let mut per_venue: Vec<(String, ClientReport)> =
            venues.iter().map(|v| (v.clone(), ClientReport::default())).collect();
        for phone in phones {
            let (v, report) = phone.join().expect("fleet client thread");
            per_venue[v].1.absorb(report);
        }
        per_venue
    });
    let fleet_wall = fleet_start.elapsed();
    let act2_high = mint_trace_id();

    // Admin smoke over the wire, before the server goes away: the stats
    // exposition must parse strictly and the span ledger must balance.
    // The WriteBack span of a request is recorded *after* its reply is
    // sent, so give the executors a beat to finish the last bookkeeping.
    if server.is_some() {
        std::thread::sleep(Duration::from_millis(250));
    }
    let admin_stats = server.as_ref().map(|s| {
        let mut admin = NetClient::connect(s.local_addr()).expect("admin connect");
        admin.set_read_timeout(Some(Duration::from_secs(10))).expect("admin read timeout");
        admin.fetch_stats().expect("admin stats over TCP")
    });
    if let Some(text) = &admin_stats {
        let samples = parse_exposition(text).expect("admin exposition parses strictly");
        let opened = aggregate(&samples, "stone_trace_spans_opened_total").value;
        let closed = aggregate(&samples, "stone_trace_spans_closed_total").value;
        assert!(
            (opened - closed).abs() < 0.5,
            "span ledger unbalanced over the wire: opened {opened} closed {closed}"
        );
        let decoded = aggregate(&samples, "stone_net_requests_decoded_total").value;
        println!(
            "admin stats over TCP: {} samples parsed, {decoded:.0} frames decoded, \
             span ledger balanced at {opened:.0}",
            samples.len(),
        );
    }
    let ledger = server.map(|mut s| (s.serve_stats(), s.shutdown()));
    if fleet_tracing {
        let fleet_spans = stage_breakdown(act2_low, act2_high);
        if fleet_spans.traces > 0 {
            println!();
            print_stage_table("act 2 fleet, newest ring window", &fleet_spans);
        }
    }

    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "venue", "sent", "ok", "shed", "expired", "retried", "timeout", "ok/s", "p50", "p99"
    );
    let mut fleet_total = ClientReport::default();
    for (venue, report) in &mut per_venue {
        let (p50, p99) = (report.percentile(0.50), report.percentile(0.99));
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9.0} {:>9} {:>9}",
            venue,
            report.sent,
            report.ok,
            report.shed,
            report.expired,
            report.retried,
            report.timeouts,
            report.ok as f64 / fleet_wall.as_secs_f64(),
            fmt_latency(p50),
            fmt_latency(p99),
        );
        let taken = std::mem::take(report);
        fleet_total.absorb(taken);
    }
    let fleet_rps = fleet_total.ok as f64 / fleet_wall.as_secs_f64();
    let (p50, p99) = (fleet_total.percentile(0.50), fleet_total.percentile(0.99));
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9.0} {:>9} {:>9}",
        "TOTAL",
        fleet_total.sent,
        fleet_total.ok,
        fleet_total.shed,
        fleet_total.expired,
        fleet_total.retried,
        fleet_total.timeouts,
        fleet_rps,
        fmt_latency(p50),
        fmt_latency(p99),
    );
    // Retry amplification: wire frames per unique request. 1.00 means no
    // retries; anything above it is extra offered load the retry knob
    // added on top of an already-shedding server.
    if fleet_total.sent > 0 {
        println!(
            "retry amplification: {:.3} ({} re-sends over {} requests); \
             deadline-expired: {}",
            (fleet_total.sent + fleet_total.retried) as f64 / fleet_total.sent as f64,
            fleet_total.retried,
            fleet_total.sent,
            fleet_total.expired,
        );
    }
    println!();
    if let Some((serve_stats, wire)) = &ledger {
        println!(
            "fleet wall {:.2?}; wire: {} decoded, {} responses, {} shed, {} malformed; \
             serve: {} completed, {} rejected, mean batch {:.2}",
            fleet_wall,
            wire.requests_decoded,
            wire.responses_written,
            wire.shed,
            wire.malformed_frames,
            serve_stats.completed,
            serve_stats.rejected,
            serve_stats.mean_batch_size(),
        );
        // The scheduler's own per-venue view: how fat each venue's batches
        // stayed under the sharded drain, and which capacity (global vs
        // per-venue) did the shedding.
        println!();
        println!(
            "{:<10} {:>9} {:>10} {:>9} {:>11} {:>9} {:>9}",
            "scheduler", "completed", "shed-glob", "shed-ven", "mean batch", "p50", "p99"
        );
        for v in &serve_stats.venues {
            println!(
                "{:<10} {:>9} {:>10} {:>9} {:>11.2} {:>9} {:>9}",
                v.venue,
                v.completed,
                v.shed_global,
                v.shed_venue,
                v.mean_batch_size(),
                fmt_latency(v.p50()),
                fmt_latency(v.p99()),
            );
        }
        assert_eq!(
            fleet_total.sent + fleet_total.retried,
            wire.requests_decoded,
            "every sent frame (including re-sends) was decoded"
        );
    } else {
        println!(
            "fleet wall {fleet_wall:.2?}; the remote server at {server_addr} keeps \
             the wire/serve ledger"
        );
    }
    println!(
        "TCP fleet at {} venue(s) sustains {:.0} ok/s vs {:.0} req/s in-process coalesced \
         ({:.0}% of in-process)",
        n_venues,
        fleet_rps,
        inproc_rps,
        100.0 * fleet_rps / inproc_rps,
    );
    assert_eq!(
        fleet_total.ok
            + fleet_total.shed
            + fleet_total.expired
            + fleet_total.other_errors
            + fleet_total.timeouts,
        fleet_total.sent,
        "every request is accounted for: ok + shed + expired + errors + timeouts"
    );
}
