//! Load generator for the serving layer: N closed-loop client threads fire
//! single-scan queries at a [`LocalizationServer`], once with batching
//! disabled (`max_batch = 1`) and once with coalescing on — the pair of
//! numbers behind the serving table in `docs/PERFORMANCE.md`. The coalesced
//! pass also hot-swaps a retrained model mid-run to show warm reload under
//! load.
//!
//! Run with: `cargo run --release --example loadgen`
//!
//! Knobs (environment): `LOADGEN_CLIENTS` (default 8), `LOADGEN_REQUESTS`
//! per client (default 64), `STONE_THREADS` for the kernel thread budget.

use std::sync::Arc;
use std::time::{Duration, Instant};

use stone_repro::dataset::office_suite;
use stone_repro::prelude::*;
use stone_repro::serve::StatsSnapshot;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn fmt_latency(d: Option<Duration>) -> String {
    d.map_or_else(|| "-".into(), |d| format!("{:.1?}", d))
}

struct PassResult {
    label: &'static str,
    wall: Duration,
    stats: StatsSnapshot,
    answered: usize,
}

/// The traffic pattern shared by both passes: which venues and scans the
/// closed-loop clients cycle through, and how many of each.
struct Workload<'a> {
    venues: &'a [String],
    scans: &'a [Vec<f32>],
    clients: usize,
    requests: usize,
}

/// One load pass: `clients` closed-loop threads, `requests` queries each,
/// round-robin over the venues. Returns wall time and the server's stats.
fn run_pass(
    label: &'static str,
    registry: &Arc<ModelRegistry>,
    cfg: ServerConfig,
    load: &Workload<'_>,
    swap: Option<StoneLocalizer>,
) -> PassResult {
    let server = LocalizationServer::start(Arc::clone(registry), cfg);
    let start = Instant::now();
    let answered: usize = std::thread::scope(|s| {
        let workers: Vec<_> = (0..load.clients)
            .map(|c| {
                let handle = server.handle();
                s.spawn(move || {
                    let mut ok = 0;
                    for r in 0..load.requests {
                        let venue = &load.venues[(c + r) % load.venues.len()];
                        let scan = &load.scans[(c * load.requests + r) % load.scans.len()];
                        if handle.locate(venue, scan).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        // Warm reload mid-run: publish a retrained model for every venue
        // while the clients are hammering the queue.
        if let Some(model) = swap {
            let blob = model.save();
            for venue in load.venues {
                registry.publish_bytes(venue, &blob).expect("retrained model publishes from bytes");
            }
        }
        workers.into_iter().map(|w| w.join().expect("client thread")).sum()
    });
    let wall = start.elapsed();
    let stats = server.stats();
    server.shutdown();
    PassResult { label, wall, stats, answered }
}

fn main() {
    let clients = env_usize("LOADGEN_CLIENTS", 8);
    let requests = env_usize("LOADGEN_REQUESTS", 64);

    // A moderately sized deployment: the full office RP path with a short
    // survey and training schedule (serving cost does not depend on how
    // long the encoder trained — only on its architecture and the enrolled
    // reference set).
    let suite = office_suite(&SuiteConfig::new(7).with_train_fpr(3));
    let builder = StoneBuilder::from_config(StoneConfig {
        trainer: stone_repro::core::TrainerConfig {
            epochs: 2,
            triplets_per_epoch: 64,
            batch_size: 32,
            ..stone_repro::core::TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    });
    println!("loadgen: training the deployment model...");
    let model = builder.fit(&suite.train, 7);
    let retrained = builder.fit(&suite.train, 8);
    let blob = model.save();

    // Two venues, both published from the serialized blob (the same path a
    // cross-process retrainer uses).
    let venues: Vec<String> = vec!["office-east".into(), "office-west".into()];
    let registry = Arc::new(ModelRegistry::new());
    for venue in &venues {
        registry.publish_bytes(venue, &blob).expect("model publishes from bytes");
    }
    let scans: Vec<Vec<f32>> = suite.buckets.iter().flat_map(|b| b.raw_scans()).collect();
    println!(
        "loadgen: {} clients × {} requests over {} venues ({} refs, {} B model blob, \
         STONE_THREADS={})",
        clients,
        requests,
        venues.len(),
        model.knn().len(),
        blob.len(),
        stone_repro::par::max_threads(),
    );

    let load = Workload { venues: &venues, scans: &scans, clients, requests };
    let uncoalesced = run_pass(
        "batch-1",
        &registry,
        ServerConfig { max_batch: 1, ..ServerConfig::default() },
        &load,
        None,
    );
    let coalesced = run_pass(
        "coalesced",
        &registry,
        ServerConfig { max_batch: 64, ..ServerConfig::default() },
        &load,
        Some(retrained),
    );

    let total = clients * requests;
    println!();
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>11} {:>10}",
        "mode", "total", "req/s", "p50", "p99", "mean batch", "batches>1"
    );
    for pass in [&uncoalesced, &coalesced] {
        assert_eq!(pass.answered, total, "{}: dropped queries", pass.label);
        println!(
            "{:<11} {:>9.2?} {:>9.0} {:>9} {:>9} {:>11.2} {:>10}",
            pass.label,
            pass.wall,
            total as f64 / pass.wall.as_secs_f64(),
            fmt_latency(pass.stats.p50()),
            fmt_latency(pass.stats.p99()),
            pass.stats.mean_batch_size(),
            pass.stats.coalesced_batches(),
        );
    }
    println!();
    println!(
        "coalescing sped total wall time up {:.2}x; post-reload versions: {:?}",
        uncoalesced.wall.as_secs_f64() / coalesced.wall.as_secs_f64(),
        venues
            .iter()
            .map(|v| registry.snapshot(v).expect("venue published").version())
            .collect::<Vec<_>>(),
    );
}
