//! Long-term deployment study: STONE vs the re-trained LT-KNN baseline over
//! 15 months of the UJI-like suite (a miniature of the paper's Fig. 5).
//!
//! Run with: `cargo run --release --example long_term_deployment`

use stone_dataset::uji_suite;
use stone_repro::baselines::LtKnnBuilder;
use stone_repro::prelude::*;

fn main() {
    let suite = uji_suite(&SuiteConfig::new(7));
    println!(
        "UJI-like suite: {} RPs on a grid, {} APs, ~50% of APs removed at month 11\n",
        suite.train.rps().len(),
        suite.train.ap_count()
    );

    let stone = StoneBuilder::quick();
    let ltknn = LtKnnBuilder::default();
    let frameworks: Vec<&dyn Framework> = vec![&stone, &ltknn];

    let report = Experiment::new(7).run(&suite, &frameworks);
    println!("{}", report.render_table());

    let s = report.series_for("STONE").expect("STONE evaluated");
    let l = report.series_for("LT-KNN").expect("LT-KNN evaluated");
    println!(
        "over {} months: STONE {:.2} m with zero re-training; LT-KNN {:.2} m \
         with {} re-fits (one per month).",
        report.bucket_labels.len(),
        s.overall_mean_m(),
        l.overall_mean_m(),
        report.bucket_labels.len()
    );
    println!(
        "largest per-month advantage of STONE over LT-KNN: {:+.1}%",
        report.max_improvement_pct("STONE", "LT-KNN")
    );
}
