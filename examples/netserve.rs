//! A standalone framed-TCP localization server: trains an office
//! deployment, publishes it for one or more venues, and serves scans over
//! the `stone-net` wire protocol until you press Enter (or stdin closes),
//! then drains gracefully and prints the final ledgers.
//!
//! Pair it with the fleet half of the load generator in another terminal:
//!
//! ```text
//! cargo run --release --example netserve
//! LOADGEN_ADDR=127.0.0.1:7600 cargo run --release --example loadgen
//! ```
//!
//! Knobs (environment): `NETSERVE_ADDR` (default `127.0.0.1:7600`),
//! `NETSERVE_VENUES` (default 1), `STONE_THREADS` for the kernel budget.

use std::sync::Arc;

use stone_repro::dataset::office_suite;
use stone_repro::net::{codec::fmt_latency, NetServer};
use stone_repro::prelude::*;

fn main() {
    let addr = std::env::var("NETSERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7600".into());
    let n_venues: usize = std::env::var("NETSERVE_VENUES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);

    let suite = office_suite(&SuiteConfig::new(7).with_train_fpr(3));
    println!("netserve: training the deployment model...");
    let model = StoneBuilder::from_config(StoneConfig {
        trainer: stone_repro::core::TrainerConfig {
            epochs: 2,
            triplets_per_epoch: 64,
            batch_size: 32,
            ..stone_repro::core::TrainerConfig::quick()
        },
        ..StoneConfig::quick()
    })
    .fit(&suite.train, 7);
    let blob = model.save();

    let venues: Vec<String> = (0..n_venues).map(|v| format!("venue-{v:02}")).collect();
    let registry = Arc::new(ModelRegistry::new());
    for venue in &venues {
        registry.publish_bytes(venue, &blob).expect("model publishes from bytes");
    }

    let mut server = NetServer::start(registry, addr.as_str(), ServerConfig::default())
        .expect("bind NETSERVE_ADDR");
    println!(
        "netserve: serving {} venue(s) [{}] on {} ({} refs per venue, {} B blob, \
         STONE_THREADS={})",
        venues.len(),
        venues.join(", "),
        server.local_addr(),
        model.knn().len(),
        blob.len(),
        stone_repro::par::max_threads(),
    );
    println!("netserve: press Enter to drain and exit");

    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);

    let serve_stats = server.serve_stats();
    let wire = server.shutdown();
    println!(
        "netserve: drained. wire: {} conns ({} closed), {} requests, {} responses, \
         {} shed, {} malformed; serve: {} completed, {} rejected, mean batch {:.2}",
        wire.connections_accepted,
        wire.connections_closed,
        wire.requests_decoded,
        wire.responses_written,
        wire.shed,
        wire.malformed_frames,
        serve_stats.completed,
        serve_stats.rejected,
        serve_stats.mean_batch_size(),
    );
    // Per-venue scheduler breakdown: batch fattening and shed attribution
    // under the venue-sharded drain.
    for v in &serve_stats.venues {
        println!(
            "netserve:   {}: {} completed, {} shed (global {}, venue {}), mean batch {:.2}, \
             p50 {}, p99 {}",
            v.venue,
            v.completed,
            v.shed(),
            v.shed_global,
            v.shed_venue,
            v.mean_batch_size(),
            fmt_latency(v.p50()),
            fmt_latency(v.p99()),
        );
    }
}
