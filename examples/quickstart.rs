//! Quickstart: train a STONE localizer on a simulated office building and
//! locate a few scans captured months later.
//!
//! Run with: `cargo run --release --example quickstart`

use stone_dataset::office_suite;
use stone_repro::prelude::*;

fn main() {
    // 1. Build a long-term evaluation suite: a simulated 48 m office
    //    corridor surveyed at 48 reference points (6 fingerprints each), with
    //    16 collection instances spanning 8 months and an AP-removal event
    //    after CI 11 — the scenario of the STONE paper (DATE 2022).
    let suite = office_suite(&SuiteConfig::new(42));
    println!(
        "suite: {} RPs, {} APs, {} training fingerprints, {} buckets",
        suite.train.rps().len(),
        suite.train.ap_count(),
        suite.train.len(),
        suite.buckets.len()
    );

    // 2. Offline phase: train the Siamese encoder + embedding KNN.
    //    `quick()` is sized for laptops; `StoneBuilder::paper()` uses the
    //    longer schedule.
    println!("training STONE (Siamese triplet encoder)...");
    let localizer = StoneBuilder::quick().fit(&suite.train, 42);
    let history = localizer.encoder().history();
    println!(
        "trained: triplet loss {:.3} -> {:.3} over {} epochs",
        history.first().map_or(f32::NAN, |h| h.loss),
        history.last().map_or(f32::NAN, |h| h.loss),
        history.len()
    );

    // 3. Online phase: locate scans captured at different timescales —
    //    six hours, six days and eight months after deployment.
    for bucket_idx in [1usize, 8, 15] {
        let bucket = &suite.buckets[bucket_idx];
        let fp = &bucket.trajectories[0].fingerprints[10];
        let predicted = localizer.locate(&fp.rssi);
        println!(
            "bucket {} ({}): true {} -> predicted {} | error {:.2} m",
            bucket.label,
            bucket.time,
            fp.pos,
            predicted,
            predicted.distance(fp.pos)
        );
    }

    // 4. No re-training happened at any point — that is STONE's pitch.
    println!("re-training performed since deployment: none");
}
