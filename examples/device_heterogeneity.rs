//! Device heterogeneity: the phone used online is rarely the phone used for
//! the survey. Different WiFi chipsets report RSSI with constant gain
//! offsets, which shifts every fingerprint at query time.
//!
//! The STONE authors address this in their PortLoc/SHERPA line of work; here
//! we probe how the Siamese encoder (trained with Gaussian input noise and
//! AP dropout) tolerates chipset offsets compared to raw-RSSI KNN.
//!
//! Run with: `cargo run --release --example device_heterogeneity`

use stone_dataset::{office_suite, MISSING_RSSI_DBM};
use stone_repro::baselines::KnnBuilder;
use stone_repro::prelude::*;

/// Applies a chipset gain offset to every visible AP of a scan.
fn with_offset(rssi: &[f32], offset_db: f32) -> Vec<f32> {
    rssi.iter()
        .map(|&v| if v > MISSING_RSSI_DBM { (v + offset_db).clamp(-100.0, 0.0) } else { v })
        .collect()
}

fn main() {
    let suite = office_suite(&SuiteConfig::new(17));
    println!("training STONE and KNN on the LG-V20 survey...");
    let stone = StoneBuilder::quick().fit(&suite.train, 17);
    let knn = KnnBuilder::default().fit(&suite.train, 17);

    // Same-instance walk, but captured by "another phone".
    let bucket = &suite.buckets[1];
    let fps: Vec<_> = bucket.trajectories.iter().flat_map(|t| &t.fingerprints).collect();

    println!("\n{:>12} {:>12} {:>12}", "offset (dB)", "STONE (m)", "KNN (m)");
    for offset in [-6.0f32, -3.0, 0.0, 3.0, 6.0] {
        let mut err_stone = 0.0;
        let mut err_knn = 0.0;
        for fp in &fps {
            let scan = with_offset(&fp.rssi, offset);
            err_stone += stone.locate(&scan).distance(fp.pos);
            err_knn += knn.locate(&scan).distance(fp.pos);
        }
        let n = fps.len() as f64;
        println!("{offset:>12.1} {:>12.2} {:>12.2}", err_stone / n, err_knn / n);
    }
    println!(
        "\nA constant offset shifts every pixel of the fingerprint image; the \
         encoder's noise-augmented training should flatten the curve relative \
         to raw Euclidean matching."
    );
}
