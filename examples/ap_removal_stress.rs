//! AP-removal stress test: how much of the network can disappear before a
//! deployed localizer becomes useless?
//!
//! Removes an increasing fraction of APs from *test* scans (by forcing their
//! RSSI to -100 dBm) and compares STONE trained with and without the
//! paper's long-term augmentation (Eq. 4) — the mechanism that makes pixels
//! "turning off" survivable.
//!
//! Run with: `cargo run --release --example ap_removal_stress`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use stone_dataset::{office_suite, MISSING_RSSI_DBM};
use stone_repro::prelude::*;

fn zero_out_aps(rssi: &[f32], fraction: f64, rng: &mut StdRng) -> Vec<f32> {
    let mut out = rssi.to_vec();
    let mut visible: Vec<usize> =
        out.iter().enumerate().filter_map(|(i, &v)| (v > MISSING_RSSI_DBM).then_some(i)).collect();
    visible.shuffle(rng);
    let k = (visible.len() as f64 * fraction).round() as usize;
    for &i in visible.iter().take(k) {
        out[i] = MISSING_RSSI_DBM;
    }
    out
}

fn main() {
    let suite = office_suite(&SuiteConfig::new(11));

    println!("training STONE with augmentation (p_upper = 0.9)...");
    let with_aug = StoneBuilder::quick().with_p_upper(0.9).fit(&suite.train, 11);
    println!("training STONE without augmentation (p_upper = 0.0)...");
    let without_aug = StoneBuilder::quick().with_p_upper(0.0).fit(&suite.train, 11);

    // Evaluate on the day-0 evening bucket so the only stressor is the AP
    // removal we inject, not months of drift.
    let bucket = &suite.buckets[2];
    let fps: Vec<_> = bucket.trajectories.iter().flat_map(|t| &t.fingerprints).collect();

    println!("\n{:>10} {:>18} {:>18}", "removed", "with aug (m)", "without aug (m)");
    for fraction in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut rng = StdRng::seed_from_u64(99);
        let mut err_with = 0.0;
        let mut err_without = 0.0;
        for fp in &fps {
            let stressed = zero_out_aps(&fp.rssi, fraction, &mut rng);
            err_with += with_aug.locate(&stressed).distance(fp.pos);
            err_without += without_aug.locate(&stressed).distance(fp.pos);
        }
        let n = fps.len() as f64;
        println!("{:>9.0}% {:>16.2} {:>18.2}", fraction * 100.0, err_with / n, err_without / n);
    }
    println!(
        "\nThe augmented encoder should degrade gracefully — it has seen \
         fingerprints with up to 90% of APs turned off during training."
    );
}
