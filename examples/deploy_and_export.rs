//! Deployment artifacts: export the survey as CSV and the trained encoder
//! weights as a binary blob (what you would ship to the phone app), then
//! reload the weights into a fresh network and verify identical embeddings.
//!
//! Run with: `cargo run --release --example deploy_and_export`

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_dataset::{io, office_suite};
use stone_repro::core::{build_encoder, EncoderConfig, ImageCodec};
use stone_repro::nn::{load_weights, save_weights};
use stone_repro::prelude::*;

fn main() {
    let suite = office_suite(&SuiteConfig::new(3));

    // Export the offline survey as CSV (interoperable with common
    // fingerprint-dataset tooling).
    let csv = io::to_csv(&suite.train);
    println!(
        "CSV export: {} rows, {} bytes (first line: {})",
        suite.train.len(),
        csv.len(),
        csv.lines().next().unwrap_or("").chars().take(48).collect::<String>() + "..."
    );
    let reimported = io::from_csv("reimport", &csv).expect("roundtrip parses");
    assert_eq!(reimported.len(), suite.train.len());
    println!("CSV reimport: OK ({} rows)", reimported.len());

    // Train and export the encoder weights.
    let localizer = StoneBuilder::quick().fit(&suite.train, 3);
    let blob = save_weights(localizer.encoder().net());
    println!(
        "encoder weights: {} parameters -> {} bytes",
        localizer.encoder().net().param_count(),
        blob.len()
    );

    // "On the phone": rebuild the architecture and load the blob.
    let codec = ImageCodec::new(suite.train.ap_count());
    let mut rng = StdRng::seed_from_u64(999); // arbitrary: weights get overwritten
    let mut device_net = build_encoder(
        &EncoderConfig::paper(
            codec.side(),
            localizer.encoder().net().params().last().map_or(8, |p| p.shape()[0]),
        ),
        &mut rng,
    );
    load_weights(&mut device_net, &blob).expect("architecture matches");

    // Identical embeddings on both sides.
    let probe = &suite.train.records()[0].rssi;
    let host = localizer.embed(probe);
    let device = device_net.predict(&codec.encode_batch(&[probe.as_slice()])).into_vec();
    assert_eq!(host, device);
    println!("device-side embedding matches host-side embedding: OK");
}
