//! Bring your own building: construct a custom floorplan, simulate its WiFi
//! environment, survey fingerprints, and train a localizer — the workflow a
//! downstream user of this library would follow for their own venue.
//!
//! Run with: `cargo run --release --example custom_floorplan`

use rand::rngs::StdRng;
use rand::SeedableRng;
use stone_dataset::{Fingerprint as Fp, FingerprintDataset, ReferencePoint, RpId};
use stone_repro::prelude::*;
use stone_repro::radio::{
    AccessPoint, ApId, ApSchedule, DeviceModel, Floorplan, PropagationModel, RadioEnvironment,
    Rect, Segment, SimTime, TemporalModel, Wall,
};

fn main() {
    // 1. An L-shaped lab: two 20 m wings joined at a corner, one thick
    //    concrete wall between them.
    let bounds = Rect::new(Point2::new(0.0, 0.0), Point2::new(24.0, 24.0));
    let walls = vec![
        Wall::new(Segment::new(Point2::new(12.0, 0.0), Point2::new(12.0, 12.0)), 9.0),
        Wall::new(Segment::new(Point2::new(0.0, 12.0), Point2::new(12.0, 12.0)), 9.0),
    ];
    let plan = Floorplan::new("l-shaped-lab", bounds, walls);

    // 2. Six APs mounted around the wings.
    let aps = vec![
        AccessPoint::new(ApId(0), Point2::new(2.0, 2.0), -40.0),
        AccessPoint::new(ApId(1), Point2::new(22.0, 2.0), -38.0),
        AccessPoint::new(ApId(2), Point2::new(2.0, 22.0), -42.0),
        AccessPoint::new(ApId(3), Point2::new(22.0, 22.0), -40.0),
        AccessPoint::new(ApId(4), Point2::new(12.0, 18.0), -39.0),
        AccessPoint::new(ApId(5), Point2::new(18.0, 12.0), -41.0),
    ];

    let env = RadioEnvironment::new(
        plan,
        aps,
        PropagationModel::open_indoor(),
        TemporalModel::typical(),
        ApSchedule::none(),
        DeviceModel::lg_v20(),
        1234,
    );

    // 3. Survey reference points every 3 m along both wings.
    let mut rps = Vec::new();
    for k in 0..8 {
        rps.push(ReferencePoint { id: RpId(k), pos: Point2::new(1.5 + f64::from(k) * 3.0, 6.0) });
    }
    for k in 0..6 {
        rps.push(ReferencePoint {
            id: RpId(8 + k),
            pos: Point2::new(18.0, 9.0 + f64::from(k) * 2.5),
        });
    }

    let mut rng = StdRng::seed_from_u64(5);
    let mut train = FingerprintDataset::new("l-shaped-lab", env.ap_count(), rps.clone());
    let t0 = SimTime::from_hours(9.0);
    for rp in &rps {
        for _ in 0..5 {
            let rssi: Vec<f32> = env
                .scan(rp.pos, t0, &mut rng)
                .into_iter()
                .map(|v| v.map_or(-100.0, |x| x as f32))
                .collect();
            train.push(Fp { rssi, rp: rp.id, pos: rp.pos, time: t0, ci: 0 });
        }
    }
    println!(
        "surveyed {} fingerprints at {} RPs over {} APs",
        train.len(),
        rps.len(),
        env.ap_count()
    );

    // 4. Train and spot-check three months later.
    let localizer = StoneBuilder::quick().with_embed_dim(4).fit(&train, 5);
    let t_later = SimTime::from_months(3.0).plus_hours(14.0);
    let mut total = 0.0;
    for rp in &rps {
        let rssi: Vec<f32> = env
            .scan(rp.pos, t_later, &mut rng)
            .into_iter()
            .map(|v| v.map_or(-100.0, |x| x as f32))
            .collect();
        total += localizer.locate(&rssi).distance(rp.pos);
    }
    println!(
        "mean error three months after deployment: {:.2} m over {} spots",
        total / rps.len() as f64,
        rps.len()
    );
}
